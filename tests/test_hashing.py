"""CuckooMap and RobinHash."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.hashing.cuckoo import CuckooMapIndex
from repro.hashing.robinhood import RobinHashIndex
from repro.memsim import AddressSpace, PerfTracer, TracedArray

from conftest import build


def build32(cls, keys32, **kw):
    space = AddressSpace()
    data = TracedArray.allocate(space, np.asarray(keys32, dtype=np.uint32))
    return cls(**kw).build(data, space)


class TestRobinHash:
    def test_all_present_keys_exact(self, amzn_small):
        idx = build("RobinHash", amzn_small)
        for i in range(0, len(amzn_small.keys), 97):
            bound = idx.lookup(int(amzn_small.keys[i]))
            assert (bound.lo, bound.hi) == (i, i + 1)

    def test_point_only_flag(self):
        assert RobinHashIndex.point_only is True

    def test_absent_key_returns_full_bound(self, amzn_small):
        idx = build("RobinHash", amzn_small)
        absent = int(amzn_small.keys[0]) + 1
        if absent in set(amzn_small.keys.tolist()):
            absent += 1
        bound = idx.lookup(absent)
        assert bound.lo == 0 and bound.hi == len(amzn_small.keys) + 1

    def test_validate_present_only(self, amzn_small, amzn_workload):
        idx = build("RobinHash", amzn_small)
        assert (
            validate_index(idx, amzn_workload.keys_py, require_present=True)
            is None
        )

    def test_load_factor_controls_size(self, amzn_small):
        dense = build("RobinHash", amzn_small, load_factor=0.9)
        sparse = build("RobinHash", amzn_small, load_factor=0.25)
        assert sparse.size_bytes() > 2 * dense.size_bytes()

    def test_few_probes_at_low_load(self, amzn_small):
        idx = build("RobinHash", amzn_small, load_factor=0.25)
        t = PerfTracer()
        n = 200
        for key in amzn_small.keys[:n]:
            idx.lookup(int(key), t)
        assert t.counters.reads / n < 2.0  # ~1.15 probes at load 0.25

    def test_bad_load_factor(self):
        with pytest.raises(ValueError):
            RobinHashIndex(load_factor=0.99)

    @given(st.lists(st.integers(0, 2**64 - 2), min_size=1, max_size=300, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, keys):
        keys.sort()
        idx = RobinHashIndex().build(np.array(keys, dtype=np.uint64))
        for i in (0, len(keys) // 2, len(keys) - 1):
            bound = idx.lookup(keys[i])
            assert bound.lo == i


class TestCuckooMap:
    def test_all_present_keys_exact(self):
        rng = np.random.default_rng(3)
        keys = np.unique(rng.integers(0, 1 << 32, 5_000, dtype=np.int64)).astype(
            np.uint32
        )
        idx = build32(CuckooMapIndex, keys)
        for i in range(0, len(keys), 71):
            bound = idx.lookup(int(keys[i]))
            assert (bound.lo, bound.hi) == (i, i + 1)

    def test_rejects_64bit_keys(self, amzn_small):
        with pytest.raises(ValueError):
            build("CuckooMap", amzn_small)

    def test_high_load_factor_achieved(self):
        rng = np.random.default_rng(5)
        keys = np.unique(rng.integers(0, 1 << 32, 8_000, dtype=np.int64)).astype(
            np.uint32
        )
        idx = build32(CuckooMapIndex, keys, load_factor=0.99)
        slots = idx._n_buckets * 4
        assert len(keys) / slots > 0.90  # rebuild growth is bounded

    def test_at_most_two_bucket_reads(self):
        rng = np.random.default_rng(7)
        keys = np.unique(rng.integers(0, 1 << 32, 2_000, dtype=np.int64)).astype(
            np.uint32
        )
        idx = build32(CuckooMapIndex, keys)
        t = PerfTracer()
        n = 200
        for key in keys[:n]:
            idx.lookup(int(key), t)
        # <= 2 bucket reads + 1 value read per lookup.
        assert t.counters.reads / n <= 3.0

    def test_absent_key_full_bound(self):
        keys = np.array([10, 20, 30], dtype=np.uint32)
        idx = build32(CuckooMapIndex, keys)
        bound = idx.lookup(15)
        assert bound.lo == 0 and bound.hi == 4

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=300, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, keys):
        keys.sort()
        idx = build32(CuckooMapIndex, np.array(keys, dtype=np.uint32))
        for i in (0, len(keys) // 2, len(keys) - 1):
            bound = idx.lookup(keys[i])
            assert bound.lo == i
