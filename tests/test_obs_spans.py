"""Span tracer: nesting, exception safety, buffers, capture/inject."""

from __future__ import annotations

import os

import pytest

from repro.obs import spans


@pytest.fixture(autouse=True)
def clean_spans():
    spans.reset()
    spans.enable(True)
    yield
    spans.reset()


class TestEnablement:
    def test_disabled_by_default_without_env(self, monkeypatch):
        spans.reset()
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert not spans.enabled()
        with spans.span("x"):
            pass
        assert spans.peek() == []

    def test_disabled_span_is_shared_inert_instance(self, monkeypatch):
        spans.reset()
        monkeypatch.delenv("REPRO_OBS", raising=False)
        a = spans.span("a", attr=1)
        b = spans.span("b")
        assert a is b  # no allocation while off
        a.set(anything="goes")  # and set() is a no-op

    def test_env_var_enables(self, monkeypatch):
        spans.reset()
        monkeypatch.setenv("REPRO_OBS", "1")
        assert spans.enabled()
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not spans.enabled()

    def test_explicit_enable_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        spans.enable(True)
        assert spans.enabled()


class TestSpanRecords:
    def test_single_span_record_fields(self):
        with spans.span("build", index="RMI") as sp:
            sp.set(size_bytes=123)
        (rec,) = spans.peek()
        assert rec["name"] == "build"
        assert rec["path"] == "build"
        assert rec["parent"] is None
        assert rec["status"] == "ok"
        assert rec["pid"] == os.getpid()
        assert rec["wall_ns"] >= 0
        assert rec["attrs"] == {"index": "RMI", "size_bytes": 123}

    def test_nesting_builds_paths_and_parent_links(self):
        with spans.span("outer") as outer:
            with spans.span("mid"):
                with spans.span("inner"):
                    assert spans.current_span_path() == "outer/mid/inner"
        inner, mid, out = spans.peek()  # completion order
        assert inner["path"] == "outer/mid/inner"
        assert mid["path"] == "outer/mid"
        assert out["path"] == "outer"
        assert inner["parent"] == mid["sid"]
        assert mid["parent"] == out["sid"]
        assert out["parent"] is None
        assert out["sid"] == outer.sid

    def test_exception_marks_error_and_propagates(self):
        with pytest.raises(ValueError):
            with spans.span("outer"):
                with spans.span("boom"):
                    raise ValueError("x")
        boom, outer = spans.peek()
        assert boom["name"] == "boom" and boom["status"] == "error"
        assert outer["status"] == "error"
        # The stack unwound fully: a new span is top-level again.
        assert spans.current_span_path() == ""
        with spans.span("after"):
            pass
        assert spans.peek()[-1]["parent"] is None

    def test_counter_attachment_from_tracer(self):
        from repro.memsim.tracer import PerfTracer

        t = PerfTracer()
        with spans.span("measure", tracer=t):
            t.instr(7)
            t.read(0)
        (rec,) = spans.peek()
        assert rec["counters"]["instructions"] == 8  # 7 + 1 per read
        assert rec["counters"]["reads"] == 1

    def test_synthetic_record_helper(self):
        with spans.span("outer"):
            spans.record("cell", 100, 200, label="X", cache_hit=True)
        cell, outer = spans.peek()
        assert cell["name"] == "cell"
        assert cell["path"] == "outer/cell"
        assert cell["parent"] == outer["sid"]
        assert cell["wall_ns"] == 200
        assert cell["attrs"] == {"label": "X", "cache_hit": True}


class TestBufferOps:
    def test_drain_clears(self):
        with spans.span("a"):
            pass
        assert len(spans.drain()) == 1
        assert spans.peek() == []
        assert spans.drain() == []

    def test_capture_isolates_and_restores(self):
        with spans.span("before"):
            pass
        with spans.capture() as cap:
            with spans.span("worker"):
                pass
        assert [r["name"] for r in cap.records] == ["worker"]
        # Pre-existing records survive; captured ones are not duplicated.
        assert [r["name"] for r in spans.peek()] == ["before"]

    def test_inject_merges_external_records(self):
        with spans.capture() as cap:
            with spans.span("shipped"):
                pass
        spans.inject(cap.records)
        assert [r["name"] for r in spans.peek()] == ["shipped"]
