"""Determinism regressions for live reconfiguration.

Same bar as ``test_cluster_determinism.py``: repeated runs of an
actively-reconfiguring cluster are bit-identical -- handoff (epoch)
schedules, rebuild completion times, autoscaler decisions, and the
latency percentiles -- across 5 seeds x 2 runs.  And the cache-key
hygiene rule the telemetry layer set: a :class:`ClusterTask` gains a
``reconfig`` key-fields entry *only* when a spec with triggers is
attached, so pre-reconfig caches stay valid and a warm-cache replay of
a reconfiguring sweep is 100% hits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.cache import SimResultCache, sim_key
from repro.memsim.counters import PerfCountersF
from repro.serve.arrivals import poisson_arrivals
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.core import ServiceModel
from repro.serve.metrics import summarize
from repro.serve.reconfig import (
    AutoscaleSpec,
    RebuildSpec,
    ReconfigSpec,
    SplitSpec,
)
from repro.serve.router import RouterPolicy, ShardMap, request_keys
from repro.serve.sweep import clear_sim_results, cluster_task, run_sim_tasks

RATE = 3e5
N_REQ = 300
SPAN_NS = N_REQ / RATE * 1e9


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_sim_results()
    yield
    clear_sim_results()


def counters(instructions=500):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=5.0,
        llc_misses=30.0,
        l1_hits=40.0,
    )


class FakeMeasurement:
    """Duck-typed stand-in for repro.bench.harness.Measurement."""

    def __init__(self):
        self.index = "X"
        self.config = {}
        self.size_bytes = 1 << 20
        self.counters = counters()


@pytest.fixture(scope="module")
def keys():
    raw = np.random.default_rng(1).integers(
        0, 2**40, size=5000, dtype=np.uint64
    )
    return np.unique(raw)


def active_spec(keys):
    bounds = ShardMap.from_keys(keys, 3).lower_bounds
    return ReconfigSpec(
        splits=(
            SplitSpec(
                at_ns=0.2 * SPAN_NS,
                shard=0,
                at_key=bounds[0] + (bounds[1] - bounds[0]) // 2,
            ),
        ),
        rebuilds=(
            RebuildSpec(
                at_ns=0.45 * SPAN_NS,
                shard=1,
                replica=0,
                build_ns=0.2 * SPAN_NS,
                speedup=1.25,
            ),
        ),
        autoscale=AutoscaleSpec(
            interval_ns=SPAN_NS / 8,
            up_depth=2,
            min_replicas=2,
            max_replicas=4,
        ),
    )


def run_once(keys, seed):
    cluster = Cluster(
        shard_map=ShardMap.from_keys(keys, 3),
        services=[ServiceModel(counters()) for _ in range(3)],
        n_replicas=2,
        n_cores=2,
        policy=RouterPolicy(),
        faults=None,
        reconfig=active_spec(keys),
    )
    return simulate_cluster(
        cluster,
        poisson_arrivals(RATE, N_REQ, seed),
        request_keys(keys, N_REQ, seed),
    )


class TestRunDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_two_runs_bit_identical(self, keys, seed):
        a, b = run_once(keys, seed), run_once(keys, seed)
        # Handoff schedule: the epoch history, install times included.
        assert a.epochs == b.epochs
        # Rebuild completion times and autoscaler decisions.
        assert a.rebuilds == b.rebuilds
        assert a.scale_events == b.scale_events
        assert a.live_replicas == b.live_replicas
        # Per-request floats and the percentile summary.
        assert [
            (r.rid, r.shard, r.replica, r.latency_ns) for r in a.records
        ] == [(r.rid, r.shard, r.replica, r.latency_ns) for r in b.records]
        la = [r.latency_ns for r in a.records if r.completed]
        lb = [r.latency_ns for r in b.records if r.completed]
        sa, sb = summarize(la), summarize(lb)
        assert (sa.p50_ns, sa.p95_ns, sa.p99_ns) == (
            sb.p50_ns,
            sb.p95_ns,
            sb.p99_ns,
        )

    def test_distinct_seeds_distinct_runs(self, keys):
        a, b = run_once(keys, 0), run_once(keys, 1)
        assert a.makespan_ns != b.makespan_ns


class TestCacheKeyHygiene:
    def task(self, keys, reconfig):
        shard_map = ShardMap.from_keys(keys, 3)
        return cluster_task(
            [FakeMeasurement() for _ in range(3)],
            shard_map,
            request_keys(keys, N_REQ, 0),
            RATE,
            N_REQ,
            0,
            2,
            2,
            RouterPolicy(),
            None,
            None,
            reconfig=reconfig,
        )

    def test_reconfig_field_only_when_set(self, keys):
        bare = self.task(keys, None)
        noop = self.task(keys, ReconfigSpec())
        active = self.task(keys, active_spec(keys))
        # None and the trigger-free spec both freeze to no entry at all:
        # pre-reconfig cache keys are bit-for-bit unchanged.
        assert "reconfig" not in bare.key_fields()
        assert "reconfig" not in noop.key_fields()
        assert sim_key(bare) == sim_key(noop)
        # An active spec keys the run.
        assert "reconfig" in active.key_fields()
        assert sim_key(active) != sim_key(bare)

    def test_warm_cache_replays_with_full_hits(self, keys, tmp_path):
        cache = SimResultCache(str(tmp_path / "serving"))
        tasks = [self.task(keys, active_spec(keys)) for _ in range(1)]
        cold = run_sim_tasks(tasks, jobs=2, cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        cache.reset_stats()
        clear_sim_results()  # drop the in-process memo: hit the cache
        warm = run_sim_tasks(tasks, cache=cache)
        assert cache.hits == 1 and cache.misses == 0
        assert warm == cold
        # The replayed record still carries the reconfig outcome.
        assert warm[0]["epoch_count"] == 2
        assert warm[0]["final_shards"] == 4
