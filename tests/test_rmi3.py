"""Three-stage RMI extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.learned.rmi3 import RMI3Index
from repro.memsim import PerfTracer

from conftest import build


class TestRMI3Validity:
    def test_valid_on_all_datasets(self, all_datasets_small):
        for name, ds in all_datasets_small.items():
            idx = build("RMI3", ds, branching=256, mid_branching=16)
            probes = list(ds.keys[::37]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, name

    def test_valid_on_absent_keys(self, amzn_small, amzn_workload):
        idx = build("RMI3", amzn_small, branching=128, mid_branching=8)
        assert validate_index(idx, amzn_workload.keys_py) is None

    def test_extreme_probes(self, amzn_small, extreme_probe_keys):
        idx = build("RMI3", amzn_small, branching=128, mid_branching=8)
        assert validate_index(idx, extreme_probe_keys) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=250, unique=True),
        st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_validity_property(self, keys, probe):
        keys.sort()
        idx = RMI3Index(branching=64, mid_branching=8).build(
            np.array(keys, dtype=np.uint64)
        )
        assert validate_index(idx, [probe]) is None


class TestRMI3Structure:
    def test_three_reads_per_lookup(self, amzn_small):
        idx = build("RMI3", amzn_small, branching=512, mid_branching=32)
        t = PerfTracer()
        idx.lookup(int(amzn_small.keys[1000]), t)
        assert t.counters.reads == 3

    def test_more_accurate_than_two_stage_at_same_leaves(self, osm_small):
        from repro.learned.rmi import RMIIndex

        two = RMIIndex(branching=256, stage1="linear").build(osm_small.keys)
        three = build(
            "RMI3", osm_small, branching=256, mid_branching=32, stage1="linear"
        )
        # Average bound width across sampled lookups.
        def avg_width(idx):
            widths = [
                len(idx.lookup(int(k))) for k in osm_small.keys[::53]
            ]
            return sum(widths) / len(widths)

        assert avg_width(three) <= avg_width(two)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RMI3Index(branching=0)
        with pytest.raises(ValueError):
            RMI3Index(mid_branching=0)

    def test_sweep_configs(self):
        configs = RMI3Index.size_sweep_configs(100_000)
        assert configs
        assert all("mid_branching" in c for c in configs)
