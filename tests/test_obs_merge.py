"""Cross-process span merge: serial and pooled runs agree modulo pids.

Workers capture spans into private buffers and ship them back with their
results; the parent injects them in deterministic dispatch order.  The
resulting span stream -- paths, names, statuses, deterministic
attributes, order -- must be identical between ``jobs=1`` and
``jobs=2``; only pids, span ids, and wall-clock fields may differ.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.cache import MeasurementCache
from repro.bench.cells import MeasureCell, freeze_config
from repro.bench.experiments import common
from repro.bench.parallel import run_cells
from repro.obs import spans

#: Span attributes that are real wall clock, never compared.
VOLATILE_ATTRS = ("build_seconds",)


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    common.set_active_cache(None)
    common.clear_caches()
    spans.reset()
    # Env (not enable()) so spawned pool workers inherit the switch.
    monkeypatch.setenv("REPRO_OBS", "1")
    yield
    spans.reset()
    common.set_active_cache(None)
    common.clear_caches()


@pytest.fixture(scope="module")
def grid():
    cells = []
    for ds_name in ("amzn", "osm"):
        for index_name, config in (("RMI", {"branching": 64}), ("BTree", {})):
            cells.append(
                MeasureCell(
                    dataset=ds_name,
                    n_keys=2_000,
                    seed=3,
                    key_bits=64,
                    index=index_name,
                    config=freeze_config(config),
                    n_lookups=50,
                    warmup=20,
                )
            )
    return cells


def comparable_view(records):
    """Span stream with pids/ids/timing removed; order preserved."""
    out = []
    for r in records:
        attrs = {
            k: v
            for k, v in (r.get("attrs") or {}).items()
            if k not in VOLATILE_ATTRS
        }
        out.append((r["path"], r["name"], r["status"], tuple(sorted(attrs.items()))))
    return out


class TestSerialParallelSpanEquality:
    def test_span_streams_identical_modulo_pids(self, grid):
        run_cells(grid, jobs=1, memo={})
        serial_spans = spans.drain()
        run_cells(grid, jobs=2, memo={})
        parallel_spans = spans.drain()

        assert serial_spans, "serial run recorded no spans"
        assert comparable_view(serial_spans) == comparable_view(
            parallel_spans
        )
        # Each cell produced its build/measure/cell trio.
        names = [r["name"] for r in serial_spans]
        assert names.count("cell") == len(grid)
        assert names.count("build") == len(grid)
        assert names.count("measure") == len(grid)

    def test_parallel_spans_carry_worker_pids(self, grid):
        run_cells(grid, jobs=2, memo={})
        records = spans.drain()
        worker_pids = {r["pid"] for r in records}
        assert worker_pids, "no spans shipped back from workers"
        assert os.getpid() not in worker_pids

    def test_parent_links_survive_the_ship_home(self, grid):
        run_cells(grid, jobs=2, memo={})
        records = spans.drain()
        by_sid = {r["sid"]: r for r in records}
        children = [r for r in records if r["parent"] is not None]
        assert children
        for r in children:
            parent = by_sid[r["parent"]]
            assert r["path"] == parent["path"] + "/" + r["name"]


class TestWorkerCells:
    def test_worker_cells_populated_for_executed_cells(self, grid):
        _, stats = run_cells(grid, jobs=2, memo={})
        assert len(stats.worker_cells) == len(grid)
        labels = sorted(label for _, label, _, _ in stats.worker_cells)
        assert labels == sorted(
            f"{c.index}/{c.dataset}" + (
                "({})".format(
                    ",".join(f"{k}={v}" for k, v in sorted(c.config))
                )
                if c.config
                else ""
            )
            for c in grid
        )
        for pid, _label, wall_ns, cache_hit in stats.worker_cells:
            assert pid != os.getpid()
            assert wall_ns > 0
            assert cache_hit is False

    def test_cache_hits_recorded_with_parent_pid(self, grid, tmp_path):
        cache = MeasurementCache(str(tmp_path / "cache"))
        run_cells(grid, jobs=2, memo={}, cache=cache)
        spans.drain()
        _, stats = run_cells(grid, jobs=2, memo={}, cache=cache)
        assert stats.cache_hits == len(grid)
        assert len(stats.worker_cells) == len(grid)
        for pid, _label, _wall_ns, cache_hit in stats.worker_cells:
            assert pid == os.getpid()
            assert cache_hit is True
        # Cache hits still surface as (synthetic) cell spans.
        cell_spans = [r for r in spans.drain() if r["name"] == "cell"]
        assert len(cell_spans) == len(grid)
        assert all(
            (r.get("attrs") or {}).get("cache_hit") for r in cell_spans
        )


class TestObsSummaryReaders:
    def test_worker_balance_from_spans_round_trips(self, grid):
        from repro.obs.report import (
            format_worker_balance,
            worker_cells_from_spans,
        )

        _, stats = run_cells(grid, jobs=2, memo={})
        tuples = worker_cells_from_spans(spans.drain())
        executed = [t for t in tuples if not t[3]]
        assert len(executed) == len(grid)
        table = format_worker_balance(stats.worker_cells)
        assert "pid" in table and "share%" in table
