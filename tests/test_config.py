"""Bench settings and sweep thinning."""

from repro.bench.config import BenchSettings, sweep_configs
from repro.core.registry import get_index_class


class TestBenchSettings:
    def test_defaults_cover_all_datasets(self):
        s = BenchSettings()
        assert set(s.datasets) == {"amzn", "face", "osm", "wiki"}

    def test_quick_preset_smaller(self):
        q = BenchSettings.quick()
        d = BenchSettings()
        assert q.n_keys < d.n_keys
        assert q.max_configs is not None


class TestSweepConfigs:
    def test_unlimited_returns_full_sweep(self):
        cls = get_index_class("PGM")
        full = cls.size_sweep_configs(100_000)
        assert sweep_configs(cls, 100_000, None) == full

    def test_limit_thins_preserving_extremes(self):
        cls = get_index_class("PGM")
        full = cls.size_sweep_configs(100_000)
        thinned = sweep_configs(cls, 100_000, 3)
        assert len(thinned) == 3
        assert thinned[0] == full[0]
        assert thinned[-1] == full[-1]

    def test_limit_larger_than_sweep(self):
        cls = get_index_class("BS")
        assert sweep_configs(cls, 1_000, 10) == [{}]

    def test_no_duplicates(self):
        cls = get_index_class("RMI")
        thinned = sweep_configs(cls, 50_000, 5)
        seen = [tuple(sorted(c.items())) for c in thinned]
        assert len(seen) == len(set(seen))
