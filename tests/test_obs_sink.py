"""Run sinks: JSONL round-trips, torn tails, manifest contents."""

from __future__ import annotations

import json
import os

from repro.bench.config import BenchSettings
from repro.obs.sink import (
    JsonlSink,
    config_hash,
    read_jsonl,
    run_manifest,
    write_run,
)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        records = [{"a": 1}, {"b": [1, 2]}, {"c": {"d": None}}]
        with JsonlSink(path) as sink:
            assert sink.emit_many(records) == 3
            assert sink.events == 3
        assert read_jsonl(path) == records

    def test_append_mode_across_reopens(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlSink(path) as sink:
            sink.emit_many([{"run": 1}])
        with JsonlSink(path) as sink:
            sink.emit_many([{"run": 2}])
        assert read_jsonl(path) == [{"run": 1}, {"run": 2}]

    def test_torn_tail_is_skipped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as f:
            f.write('{"ok": 1}\n{"torn": ')
        assert read_jsonl(path) == [{"ok": 1}]


class TestManifest:
    def test_manifest_identifies_the_run(self):
        settings = BenchSettings.quick()
        manifest = run_manifest(settings, argv=["--experiment", "fig7"])
        assert manifest["schema"] == 1
        assert manifest["argv"] == ["--experiment", "fig7"]
        assert manifest["seed"] == settings.seed
        assert manifest["settings"]["n_keys"] == settings.n_keys
        assert manifest["memsim_engine"] in ("reference", "fast")
        assert manifest["config_hash"] == config_hash(
            manifest["settings"]
        )
        # Run from a git checkout, the SHA is a 40-hex string.
        assert manifest["git_sha"] is None or len(manifest["git_sha"]) == 40
        json.dumps(manifest)  # JSON-able end to end

    def test_config_hash_is_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})


class TestWriteRun:
    def test_writes_all_three_artifacts(self, tmp_path):
        obs_dir = str(tmp_path / "run")
        paths = write_run(
            obs_dir,
            spans=[{"name": "cell", "wall_ns": 5}],
            metrics_snapshot={"counters": {"x": 1}},
            manifest=run_manifest(BenchSettings.quick(), argv=[]),
        )
        assert set(paths) == {"manifest", "spans", "metrics"}
        assert read_jsonl(paths["spans"]) == [{"name": "cell", "wall_ns": 5}]
        with open(paths["metrics"]) as f:
            assert json.load(f)["counters"] == {"x": 1}
        with open(paths["manifest"]) as f:
            assert json.load(f)["schema"] == 1
        assert sorted(os.listdir(obs_dir)) == [
            "manifest.json",
            "metrics.json",
            "spans.jsonl",
        ]

    def test_partial_write_is_fine(self, tmp_path):
        obs_dir = str(tmp_path / "run")
        paths = write_run(obs_dir, spans=[{"n": 1}])
        assert set(paths) == {"spans"}
