"""Differential determinism: parallel execution must equal serial.

The whole repo's claim rests on deterministic simulated counters, so the
parallel runner is held to bit-identical results: a grid run with
``jobs=2`` (fresh worker processes rebuilding datasets from seeds) must
produce exactly the measurements of an inline serial run, field by field,
in the same order.  ``build_seconds`` is the one deliberate exception --
it is real wall clock, which is why the differential comparison excludes
it and why the byte-identity check goes through a shared cache.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.cache import MeasurementCache, measurement_to_record
from repro.bench.config import BenchSettings
from repro.bench.experiments import common
from repro.bench.parallel import resolve_jobs, run_cells

#: Every deterministic Measurement field (all but build_seconds).
DETERMINISTIC_FIELDS = (
    "index",
    "dataset",
    "config",
    "n_keys",
    "size_bytes",
    "counters",
    "latency_ns",
    "fence_latency_ns",
    "avg_log2_bound",
    "n_lookups",
    "warm",
    "search",
    "key_bits",
)


@pytest.fixture(autouse=True)
def _isolate_measurement_caches():
    """Keep runs in this module away from shared memo / active cache."""
    common.set_active_cache(None)
    common.clear_caches()
    yield
    common.set_active_cache(None)
    common.clear_caches()


@pytest.fixture(scope="module")
def grid():
    """2 indexes x 2 datasets, two configs each: small but heterogeneous."""
    settings = BenchSettings(
        n_keys=2_500, n_lookups=40, warmup=20, max_configs=2
    )
    cells = []
    for ds_name in ("amzn", "osm"):
        for index_name in ("RMI", "BTree"):
            cells.extend(common.sweep_cells(ds_name, index_name, settings))
        cells.append(common.cell_for(ds_name, "BS", {}, settings))
    assert len(cells) >= 8
    return cells


def deterministic_view(measurement) -> dict:
    record = measurement_to_record(measurement)
    return {name: record[name] for name in DETERMINISTIC_FIELDS}


class TestSerialParallelEquality:
    def test_parallel_matches_serial_field_by_field(self, grid):
        serial, serial_stats = run_cells(grid, jobs=1, memo={})
        parallel, parallel_stats = run_cells(grid, jobs=2, memo={})
        # Both runs actually computed (nothing resolved from memo/cache).
        assert serial_stats.executed == len(grid)
        assert parallel_stats.executed == len(grid)
        assert len(serial) == len(parallel) == len(grid)
        for s, p in zip(serial, parallel):
            assert deterministic_view(s) == deterministic_view(p)

    def test_result_ordering_is_stable_across_runs(self, grid):
        first, _ = run_cells(grid, jobs=2, memo={})
        second, _ = run_cells(grid, jobs=2, memo={})
        identity = lambda m: (m.index, m.dataset, m.config, m.warm, m.search)
        expected = [
            (c.index, c.dataset, c.config_dict(), c.warm, c.search)
            for c in grid
        ]
        assert [identity(m) for m in first] == expected
        assert [identity(m) for m in second] == expected

    def test_duplicate_cells_measured_once(self, grid):
        doubled = list(grid) + list(grid)
        measurements, stats = run_cells(doubled, jobs=2, memo={})
        assert stats.total_cells == 2 * len(grid)
        assert stats.unique_cells == len(grid)
        assert stats.executed == len(grid)
        assert len(measurements) == 2 * len(grid)
        for a, b in zip(measurements[: len(grid)], measurements[len(grid):]):
            assert a is b


class TestCacheResume:
    def test_second_run_is_all_cache_hits_and_byte_identical(
        self, grid, tmp_path
    ):
        cache = MeasurementCache(str(tmp_path / "cache"))
        first, first_stats = run_cells(grid, jobs=2, memo={}, cache=cache)
        assert first_stats.executed == len(grid)
        assert len(cache) == len(grid)

        second, second_stats = run_cells(grid, jobs=2, memo={}, cache=cache)
        assert second_stats.executed == 0
        assert second_stats.cache_hits == len(grid)
        # Byte-identical records, including build_seconds, because the
        # second run replays the stored measurements.
        first_bytes = json.dumps(
            [measurement_to_record(m) for m in first], sort_keys=True
        )
        second_bytes = json.dumps(
            [measurement_to_record(m) for m in second], sort_keys=True
        )
        assert first_bytes == second_bytes

    def test_interrupted_sweep_resumes(self, grid, tmp_path):
        cache = MeasurementCache(str(tmp_path / "cache"))
        half = grid[: len(grid) // 2]
        run_cells(half, jobs=1, memo={}, cache=cache)
        _, stats = run_cells(grid, jobs=2, memo={}, cache=cache)
        assert stats.cache_hits == len(half)
        assert stats.executed == len(grid) - len(half)


class TestRunnerPlumbing:
    def test_memo_is_filled_in_cell_order(self, grid):
        memo = {}
        run_cells(grid, jobs=2, memo=memo)
        assert list(memo) == grid

    def test_serial_run_reuses_shared_memo(self, grid):
        first, _ = run_cells(grid, jobs=1)
        _, stats = run_cells(grid, jobs=1)
        assert stats.memo_hits == len(grid)
        assert stats.executed == 0

    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestCliDifferential:
    """The acceptance criterion, through the real entry point."""

    def test_jobs_flag_byte_identical_and_cached(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        cache_dir = str(tmp_path / "cache")

        def invoke(jobs: int, out_name: str) -> str:
            common.clear_caches()  # fresh process equivalent
            path = str(tmp_path / out_name)
            rc = main(
                [
                    "--experiment",
                    "fig7",
                    "--quick",
                    "--n-keys",
                    "2000",
                    "--n-lookups",
                    "25",
                    "--warmup",
                    "15",
                    "--max-configs",
                    "2",
                    "--datasets",
                    "amzn",
                    "--jobs",
                    str(jobs),
                    "--cache-dir",
                    cache_dir,
                    "--save-measurements",
                    path,
                ]
            )
            assert rc == 0
            return path

        import re

        first = invoke(1, "m1.json")
        out1 = capsys.readouterr().out
        executed = int(re.search(r"executed (\d+)", out1).group(1))
        assert executed > 0
        second = invoke(2, "m2.json")
        out2 = capsys.readouterr().out
        assert f"cache hits {executed}, executed 0" in out2
        assert open(first, "rb").read() == open(second, "rb").read()
