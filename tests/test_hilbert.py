"""Hilbert curve encoder."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.hilbert import hilbert_d_from_xy, hilbert_xy_from_d
import pytest


class TestHilbertBasics:
    def test_order_1_square(self):
        # Canonical order-1 curve: (0,0)=0 (1,0)=3 (0,1)=1 (1,1)=2.
        d = hilbert_d_from_xy(1, np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1]))
        assert sorted(d.tolist()) == [0, 1, 2, 3]

    def test_bijective_small_grid(self):
        order = 4
        side = 1 << order
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        d = hilbert_d_from_xy(order, xs.ravel(), ys.ravel())
        assert len(set(d.tolist())) == side * side
        assert int(d.max()) == side * side - 1

    def test_adjacent_distances_are_neighbors(self):
        """Defining property: consecutive d are grid neighbors."""
        order = 5
        d = np.arange((1 << order) ** 2)
        x, y = hilbert_xy_from_d(order, d)
        step = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert np.all(step == 1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_d_from_xy(3, np.array([8]), np.array([0]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hilbert_d_from_xy(3, np.array([-1]), np.array([0]))

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            hilbert_d_from_xy(0, np.array([0]), np.array([0]))


class TestHilbertRoundtrip:
    @given(
        st.integers(1, 16),
        st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=30),
        st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, order, xs, ys):
        n = min(len(xs), len(ys))
        side = 1 << order
        x = np.array(xs[:n]) % side
        y = np.array(ys[:n]) % side
        d = hilbert_d_from_xy(order, x, y)
        rx, ry = hilbert_xy_from_d(order, d)
        assert np.array_equal(rx, x)
        assert np.array_equal(ry, y)

    def test_locality(self):
        """Nearby points in 2-D tend to be nearby on the curve (in
        aggregate) -- the property that makes osm hard but not random."""
        order = 10
        rng = np.random.default_rng(0)
        x = rng.integers(0, (1 << order) - 2, 500)
        y = rng.integers(0, (1 << order) - 2, 500)
        d_base = hilbert_d_from_xy(order, x, y).astype(np.float64)
        d_neighbor = hilbert_d_from_xy(order, x + 1, y).astype(np.float64)
        d_far = hilbert_d_from_xy(
            order, (x + 512) % (1 << order), y
        ).astype(np.float64)
        near_gap = np.median(np.abs(d_neighbor - d_base))
        far_gap = np.median(np.abs(d_far - d_base))
        assert near_gap < far_gap
