"""Seed-determinism of the cluster simulator across repeated runs.

The ISSUE's acceptance criterion: the same cluster configuration run
twice per seed, across 5 seeds, must yield identical fault schedules,
retry counts, and percentile tables.  Everything here uses synthetic
counters (no harness builds), so the whole file runs in well under a
second and stays in tier 1.
"""

from __future__ import annotations

import pytest

from repro.memsim.counters import PerfCountersF
from repro.serve.arrivals import poisson_arrivals
from repro.serve.cluster import Cluster, ClusterResult, simulate_cluster
from repro.serve.core import ServiceModel
from repro.serve.faults import FaultConfig, fault_schedule
from repro.serve.router import RouterPolicy, ShardMap, request_keys

SEEDS = [0, 1, 2, 3, 4]


def counters(instructions=50, llc_misses=3.0, branch_misses=1.0):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=branch_misses,
        llc_misses=llc_misses,
        l1_hits=4.0,
    )


def run_once(seed: int) -> ClusterResult:
    """One full-featured run: faults, hedging, retries, 3x2 topology."""
    cluster = Cluster(
        shard_map=ShardMap.uniform(0, 3_000, 3),
        services=[
            ServiceModel(counters()),
            ServiceModel(counters(llc_misses=5.0)),
            ServiceModel(counters(instructions=90)),
        ],
        n_replicas=2,
        n_cores=2,
        policy=RouterPolicy(
            hedge_after_ns=2_500.0,
            backoff_base_ns=500.0,
            backoff_cap_ns=8_000.0,
        ),
        faults=FaultConfig(
            crash_mttf_ns=4e4,
            crash_mttr_ns=2e4,
            slow_mttf_ns=6e4,
            slow_mttr_ns=2e4,
            slow_factor=4.0,
            seed=seed,
        ),
    )
    arrivals = poisson_arrivals(5e6, 800, seed=seed)
    keys = request_keys(list(range(0, 3_000, 3)), 800, seed=seed)
    return simulate_cluster(cluster, arrivals, keys)


def fingerprint(result: ClusterResult):
    """Everything observable about a run, in one comparable structure."""
    return (
        [
            (
                r.rid,
                r.key,
                r.shard,
                r.arrival_ns,
                r.start_ns,
                r.finish_ns,
                r.attempts,
                r.retries,
                r.hedged,
                r.completed,
                r.failed,
                r.replica,
                r.core,
            )
            for r in result.records
        ],
        result.fault_events,
        result.makespan_ns,
        result.completed,
        result.failed,
        result.total_retries,
        result.total_hedges,
        result.crashes,
        result.slow_events,
        [
            (s.shard, s.completed, s.retries, s.hedges, s.crashes,
             s.slow_events, s.max_queue_depth)
            for s in result.shard_stats
        ],
    )


class TestClusterDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_runs_per_seed(self, seed):
        a, b = run_once(seed), run_once(seed)
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_fault_schedules(self, seed):
        a, b = run_once(seed), run_once(seed)
        assert a.fault_events == b.fault_events
        assert a.fault_events  # the config is dense enough to fault
        # And the schedule is the pure function the simulator claims:
        cfg = FaultConfig(
            crash_mttf_ns=4e4,
            crash_mttr_ns=2e4,
            slow_mttf_ns=6e4,
            slow_mttr_ns=2e4,
            slow_factor=4.0,
            seed=seed,
        )
        horizon = a.records[-1].arrival_ns + max(
            0.25 * a.records[-1].arrival_ns, 1e6
        )
        assert a.fault_events == fault_schedule(cfg, 3, 2, horizon)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_retry_counts(self, seed):
        a, b = run_once(seed), run_once(seed)
        assert a.total_retries == b.total_retries
        assert [r.retries for r in a.records] == [
            r.retries for r in b.records
        ]
        assert [s.retries for s in a.shard_stats] == [
            s.retries for s in b.shard_stats
        ]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_percentile_tables(self, seed):
        a, b = run_once(seed), run_once(seed)
        sa, sb = a.summary(), b.summary()
        assert sa == sb  # exact float equality across the whole table
        assert (sa.p50_ns, sa.p95_ns, sa.p99_ns, sa.p999_ns) == (
            sb.p50_ns,
            sb.p95_ns,
            sb.p99_ns,
            sb.p999_ns,
        )

    def test_different_seeds_differ(self):
        """Sanity: the fingerprint is sensitive enough to catch drift."""
        assert fingerprint(run_once(0)) != fingerprint(run_once(1))
