"""Cache simulator behaviour."""

import pytest

from repro.memsim.cache import LINE_SIZE, Cache, CacheHierarchy


class TestCache:
    def test_first_access_misses(self):
        c = Cache(1024, 2, "t")
        assert c.access(5) is False

    def test_second_access_hits(self):
        c = Cache(1024, 2, "t")
        c.access(5)
        assert c.access(5) is True

    def test_capacity_eviction_lru(self):
        # 2-way, map lines to one set: lines with same (line % n_sets).
        c = Cache(2 * LINE_SIZE * 1, 2, "t")  # 1 set, 2 ways
        assert c.n_sets == 1
        c.access(1)
        c.access(2)
        c.access(3)  # evicts 1 (LRU)
        assert c.contains(2)
        assert c.contains(3)
        assert not c.contains(1)

    def test_lru_updated_on_hit(self):
        c = Cache(2 * LINE_SIZE, 2, "t")
        c.access(1)
        c.access(2)
        c.access(1)  # 1 becomes MRU
        c.access(3)  # evicts 2
        assert c.contains(1)
        assert not c.contains(2)

    def test_different_sets_dont_conflict(self):
        c = Cache(4 * LINE_SIZE, 2, "t")  # 2 sets
        assert c.n_sets == 2
        c.access(0)
        c.access(2)
        c.access(4)  # all even -> set 0; odd set untouched
        c.access(1)
        assert c.contains(1)

    def test_flush(self):
        c = Cache(1024, 2, "t")
        c.access(7)
        c.flush()
        assert not c.contains(7)
        assert c.resident_lines() == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Cache(100, 3, "bad")

    def test_resident_lines_counts(self):
        c = Cache(1024, 2, "t")
        for line in range(5):
            c.access(line)
        assert c.resident_lines() == 5


class TestCacheHierarchy:
    def test_miss_then_l1_hit(self):
        h = CacheHierarchy()
        assert h.access_addr(0x1000) == 4  # DRAM
        assert h.access_addr(0x1000) == 1  # L1

    def test_same_line_shares(self):
        h = CacheHierarchy()
        h.access_addr(0x1000)
        assert h.access_addr(0x1008) == 1  # same 64B line

    def test_adjacent_lines_distinct(self):
        h = CacheHierarchy()
        h.access_addr(0x1000)
        assert h.access_addr(0x1040) == 4

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy()
        h.access_addr(0)
        # Fill L1's set for line 0: lines that map to the same L1 set but
        # different L2 sets.  L1 has 64 sets (32KB/8/64).
        n_l1_sets = h.l1.n_sets
        for i in range(1, h.l1.assoc + 1):
            h.access_addr(i * n_l1_sets * 64)
        level = h.access_addr(0)
        assert level in (2, 3)  # evicted from L1, still lower in hierarchy

    def test_flush_clears_all(self):
        h = CacheHierarchy()
        h.access_addr(0x2000)
        h.flush()
        assert h.access_addr(0x2000) == 4
