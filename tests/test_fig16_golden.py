"""Figure 16 must survive the contention-model refactor unchanged.

``tests/data/golden_fig16.txt`` is the full fig16 report recorded at a
tiny scale *before* the machine/contention model moved from
``repro.bench.multithread`` into ``repro.serve.contention``.  The report
is a pure function of deterministic measurements and the model math, so
a byte-identical reproduction means the refactor moved code without
changing a single number.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.config import BenchSettings
from repro.bench.experiments import common, fig16_multithread

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_fig16.txt"
)

#: Must match the settings the golden file was recorded with.
GOLDEN_SETTINGS = dict(
    n_keys=3_000, n_lookups=60, warmup=30, max_configs=2,
    datasets=["amzn", "osm"],
)


@pytest.fixture(autouse=True)
def _isolated_memo():
    common.set_active_cache(None)
    common.clear_caches()
    yield
    common.clear_caches()


def test_fig16_report_matches_pre_refactor_golden():
    with open(GOLDEN_PATH) as f:
        golden = f.read()
    report = fig16_multithread.run(BenchSettings(**GOLDEN_SETTINGS))
    assert report == golden


def test_multithread_shim_reexports_contention_model():
    """Old import path stays alive and is the same object, not a copy."""
    from repro.bench import multithread
    from repro.serve import contention

    assert multithread.MachineModel is contention.MachineModel
    assert multithread.throughput is contention.throughput
    assert multithread.thread_sweep is contention.thread_sweep
    assert multithread.ThroughputPoint is contention.ThroughputPoint
