"""Registry, Pareto analysis, validation."""

import pytest

from repro.core.pareto import ParetoPoint, dominated_by, front_by_index, pareto_front
from repro.core.registry import available_indexes, get_index_class, make_index
from repro.core.validation import validate_index

from conftest import build


class TestRegistry:
    def test_all_paper_indexes_registered(self):
        expected = {
            "RMI", "PGM", "RS", "BTree", "IBTree", "FAST", "ART", "FST",
            "Wormhole", "CuckooMap", "RobinHash", "RBS", "BS",
        }
        assert expected <= set(available_indexes())

    def test_make_index_passes_config(self):
        idx = make_index("RMI", branching=77)
        assert idx.branching == 77

    def test_unknown_name_helpful_error(self):
        with pytest.raises(KeyError, match="known:"):
            get_index_class("BLink")

    def test_capabilities_match_paper_table1(self):
        assert get_index_class("PGM").capabilities.updates is True
        assert get_index_class("RMI").capabilities.updates is False
        assert get_index_class("RobinHash").capabilities.ordered is False
        assert get_index_class("Wormhole").capabilities.kind == "Hybrid hash/trie"


class TestPareto:
    def _points(self):
        return [
            ParetoPoint("a", 100, 50.0),
            ParetoPoint("b", 200, 40.0),
            ParetoPoint("c", 150, 60.0),  # dominated by a
            ParetoPoint("d", 50, 90.0),
            ParetoPoint("e", 300, 40.0),  # dominated by b
        ]

    def test_front(self):
        front = pareto_front(self._points())
        assert [p.index for p in front] == ["d", "a", "b"]

    def test_dominated_by(self):
        a = ParetoPoint("a", 100, 50.0)
        c = ParetoPoint("c", 150, 60.0)
        assert dominated_by(c, a)
        assert not dominated_by(a, c)

    def test_equal_points_not_mutually_dominating(self):
        a = ParetoPoint("a", 100, 50.0)
        b = ParetoPoint("b", 100, 50.0)
        assert not dominated_by(a, b)

    def test_front_by_index_groups(self):
        fronts = front_by_index(self._points())
        assert set(fronts) == {"a", "b", "c", "d", "e"}
        assert len(fronts["a"]) == 1

    def test_empty(self):
        assert pareto_front([]) == []

    def test_front_members_never_dominated(self):
        points = self._points()
        front = pareto_front(points)
        for f in front:
            assert not any(dominated_by(f, q) for q in points)


class TestValidation:
    def test_detects_invalid_index(self, amzn_small):
        idx = build("RMI", amzn_small, branching=64)
        # Sabotage: shrink every bound to something wrong.
        original = idx.lookup

        class Broken:
            pass

        def bad_lookup(key, tracer=None):
            from repro.core.bounds import SearchBound

            return SearchBound(0, 1)

        idx.lookup = bad_lookup
        failure = validate_index(idx, [int(amzn_small.keys[-1])])
        assert failure is not None
        assert "outside bound" in str(failure)
        idx.lookup = original

    def test_passes_valid_index(self, amzn_small):
        idx = build("BTree", amzn_small, gap=2)
        assert validate_index(idx, list(amzn_small.keys[::97])) is None

    def test_require_present_skips_absent(self, amzn_small):
        idx = build("RobinHash", amzn_small)
        absent_probe = int(amzn_small.keys[0]) + 1
        assert validate_index(idx, [absent_probe], require_present=True) is None
