"""Phase attribution: per-phase counters sum byte-exactly to totals.

The load-bearing invariant: wrapping the harness tracer in a
:class:`~repro.obs.phase.PhaseTracer` never changes any counter, and the
integer per-phase totals telescope to exactly the unphased totals -- on
both memsim engines, for every instrumented index.  Golden measurements
therefore stay byte-identical under ``--profile``.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import build_index, measure
from repro.datasets.loader import make_dataset
from repro.datasets.workload import make_workload
from repro.memsim.counters import PerfCounters
from repro.memsim.tracer import PerfTracer
from repro.obs.phase import (
    PHASE_ORDER,
    PhaseTracer,
    phase_window,
    profiling_enabled,
    set_profiling,
)

INDEXES = ("RMI", "PGM", "RS", "BTree", "IBTree")


def phase_sum(phases) -> PerfCounters:
    total = PerfCounters()
    for c in phases.values():
        total = total + c
    return total


class TestPhaseTracer:
    def test_hot_methods_are_engine_bound(self):
        inner = PerfTracer()
        t = PhaseTracer(inner)
        assert t.read is inner.read
        assert t.instr is inner.instr
        assert t.branch is inner.branch

    def test_attribution_by_transition(self):
        t = PhaseTracer(PerfTracer())
        t.instr(5)  # before any marker -> "other"
        t.phase("model")
        t.instr(3)
        t.phase("model")  # same-phase marker is a cheap no-op
        t.instr(4)
        t.phase("search")
        t.instr(10)
        totals = t.checkpoint()
        assert totals["other"].instructions == 5
        assert totals["model"].instructions == 7
        assert totals["search"].instructions == 10

    def test_checkpoint_telescopes_to_snapshot(self):
        t = PhaseTracer(PerfTracer())
        base = t.snapshot()
        for i in range(50):
            t.phase(PHASE_ORDER[i % 3])
            t.instr(i)
            t.read(i * 64)
        assert phase_sum(t.checkpoint()) == t.snapshot() - base

    def test_phase_window_subtracts_and_drops_zero(self):
        t = PhaseTracer(PerfTracer())
        t.phase("model")
        t.instr(2)
        first = t.checkpoint()
        t.phase("search")
        t.instr(9)
        window = phase_window(t.checkpoint(), first)
        assert set(window) == {"search"}  # model did not move
        assert window["search"].instructions == 9

    def test_ambient_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_PROFILE", raising=False)
        assert not profiling_enabled()
        set_profiling(True)
        assert profiling_enabled()
        set_profiling(False)
        assert not profiling_enabled()


class TestMeasureProfiled:
    """Harness-level invariants, exhaustively over engines x indexes."""

    @pytest.fixture(scope="class")
    def setup(self):
        ds = make_dataset("amzn", 4_000, seed=5)
        wl = make_workload(ds, 300, seed=9)
        return ds, wl

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    @pytest.mark.parametrize("index", INDEXES)
    def test_phases_sum_to_totals_and_counters_unchanged(
        self, setup, engine, index
    ):
        ds, wl = setup
        plain = measure(
            build_index(ds, index),
            wl,
            n_lookups=200,
            warmup=60,
            engine=engine,
            profile=False,
        )
        profiled = measure(
            build_index(ds, index),
            wl,
            n_lookups=200,
            warmup=60,
            engine=engine,
            profile=True,
        )
        assert plain.phases is None
        assert profiled.phases is not None
        # Profiling changes nothing.
        assert profiled.counters == plain.counters
        assert profiled.latency_ns == plain.latency_ns
        # Integer phase totals sum byte-exactly to the measured window.
        assert (
            phase_sum(profiled.phases).per_lookup(profiled.n_lookups)
            == plain.counters
        )
        # Instrumented indexes refine both canonical phases.
        assert "model" in profiled.phases
        assert "search" in profiled.phases

    @given(
        index=st.sampled_from(INDEXES),
        engine=st.sampled_from(["reference", "fast"]),
        seed=st.integers(0, 3),
        search=st.sampled_from(["binary", "linear", "exponential"]),
        warm=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_phase_sums_exact_under_any_configuration(
        self, index, engine, seed, search, warm
    ):
        ds = make_dataset("osm", 2_000, seed=seed)
        wl = make_workload(ds, 150, seed=seed + 1)
        kwargs = dict(
            n_lookups=100, warmup=40, search=search, warm=warm, engine=engine
        )
        plain = measure(build_index(ds, index), wl, profile=False, **kwargs)
        profiled = measure(build_index(ds, index), wl, profile=True, **kwargs)
        assert profiled.counters == plain.counters
        assert (
            phase_sum(profiled.phases).per_lookup(profiled.n_lookups)
            == plain.counters
        )

    def test_both_engines_attribute_identically(self, setup):
        ds, wl = setup
        for index in INDEXES:
            ref = measure(
                build_index(ds, index),
                wl,
                n_lookups=150,
                warmup=40,
                engine="reference",
                profile=True,
            )
            fast = measure(
                build_index(ds, index),
                wl,
                n_lookups=150,
                warmup=40,
                engine="fast",
                profile=True,
            )
            assert ref.phases == fast.phases, index

    def test_profile_disables_replay_but_not_counters(self, setup):
        ds, wl = setup
        built = build_index(ds, "RMI")
        profiled = measure(
            built, wl, n_lookups=150, warmup=40, replay=True, profile=True
        )
        assert built.traces is None  # replay skipped under profiling
        replayed = measure(
            built, wl, n_lookups=150, warmup=40, replay=True, profile=False
        )
        assert built.traces is not None
        assert profiled.counters == replayed.counters


class TestGoldenPhases:
    """Profiling the golden cells leaves their counters byte-identical."""

    GOLDEN_PATH = os.path.join(
        os.path.dirname(__file__), "data", "golden_measurements.json"
    )

    def test_profiled_golden_cells_match_recorded_counters(self):
        from repro.bench.cells import MeasureCell, freeze_config

        with open(self.GOLDEN_PATH) as f:
            golden = json.load(f)
        for record in golden:
            cell = MeasureCell(
                dataset=record["dataset"],
                n_keys=record["n_keys"],
                seed=record["seed"],
                key_bits=record["key_bits"],
                index=record["index"],
                config=freeze_config(record["config"]),
                n_lookups=record["n_lookups"],
                warmup=record["warmup"],
                warm=record["warm"],
                search=record["search"],
            )
            m = cell.run(profile=True)
            assert m.phases is not None
            assert m.latency_ns == record["latency_ns"]
            assert m.fence_latency_ns == record["fence_latency_ns"]
            assert m.avg_log2_bound == record["avg_log2_bound"]
            for name, value in record["counters"].items():
                assert getattr(m.counters, name) == value, name
            assert (
                phase_sum(m.phases).per_lookup(m.n_lookups) == m.counters
            )
