"""Unit tests for the memsim engine layer (`repro.memsim.engine`).

Engine selection semantics, the SiteInterner, API parity between
PerfTracer-over-reference and PerfTracer-over-fast, and the
BranchPredictor table-materialization regression.  Counter *equivalence*
between engines lives in ``tests/test_memsim_differential.py``.
"""

from __future__ import annotations

import pytest

from repro.memsim import (
    ENGINE_NAMES,
    BranchPredictor,
    Cache,
    CacheHierarchy,
    FastEngine,
    PerfCounters,
    PerfTracer,
    ReferenceEngine,
    SiteInterner,
    default_engine_name,
    make_engine,
)
from repro.memsim.tlb import TLB


class TestSiteInterner:
    def test_ids_are_dense_and_stable(self):
        si = SiteInterner()
        assert si.intern("a") == 0
        assert si.intern("b") == 1
        assert si.intern("a") == 0
        assert len(si) == 2
        assert si.name(0) == "a" and si.name(1) == "b"

    def test_shared_interner_agrees_across_engines(self):
        si = SiteInterner()
        ref = make_engine("reference", sites=si)
        fast = make_engine("fast", sites=si)
        assert ref.sites is si and fast.sites is si


class TestEngineSelection:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMSIM_ENGINE", raising=False)
        assert default_engine_name() == "reference"
        assert PerfTracer().engine.name == "reference"

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_env_var_selects_engine(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", name)
        assert default_engine_name() == name
        assert PerfTracer().engine.name == name

    def test_env_var_rejects_unknown_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "warp9")
        with pytest.raises(ValueError, match="warp9"):
            default_engine_name()

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "fast")
        assert PerfTracer(engine="reference").engine.name == "reference"

    def test_custom_components_imply_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "fast")
        caches = CacheHierarchy(l1=Cache(4096, 4, "tiny"))
        t = PerfTracer(caches=caches)
        assert t.engine.name == "reference"
        assert t.caches is caches

    def test_fast_engine_rejects_component_objects(self):
        with pytest.raises(ValueError, match="reference"):
            make_engine("fast", caches=CacheHierarchy())

    def test_unknown_engine_name_raises(self):
        with pytest.raises(ValueError, match="hyperspeed"):
            make_engine("hyperspeed")

    def test_prebuilt_engine_instance(self):
        eng = FastEngine()
        t = PerfTracer(engine=eng)
        assert t.engine is eng
        with pytest.raises(ValueError):
            PerfTracer(engine=eng, tlb=TLB())


class TestTracerApiParity:
    """Both engines expose the same PerfTracer surface."""

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_counters_snapshot_flush(self, name):
        t = PerfTracer(engine=name)
        t.read(0x1000, 8)
        t.instr(5)
        t.branch("x", True)
        c = t.counters
        assert isinstance(c, PerfCounters)
        assert c.reads == 1 and c.branches == 1
        assert c.instructions == 1 + 5 + 1
        snap = t.snapshot()
        t.instr(1)
        assert snap.instructions == 7  # snapshot is detached
        t.flush_caches()
        # Flush drops cache/TLB state but not accumulated counters.
        assert t.counters.reads == 1
        before = t.counters.llc_misses
        t.read(0x1000, 8)
        # Cold again after flush: page walk + data line both go to DRAM.
        assert t.counters.llc_misses == before + 2

    def test_reference_exposes_components(self):
        t = PerfTracer(engine="reference")
        assert isinstance(t.caches, CacheHierarchy)
        assert isinstance(t.predictor, BranchPredictor)
        assert isinstance(t.tlb, TLB)

    def test_fast_engine_has_no_component_objects(self):
        t = PerfTracer(engine="fast")
        for attr in ("caches", "predictor", "tlb"):
            with pytest.raises(AttributeError, match="reference"):
                getattr(t, attr)

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_n_branch_sites_counts_distinct_sites(self, name):
        eng = make_engine(name)
        for site, taken in [("a", True), ("a", True), ("b", False)]:
            eng.branch(site, taken)
        assert eng.n_branch_sites() == 2

    def test_fast_n_branch_sites_ignores_interned_but_unbranched(self):
        si = SiteInterner()
        si.intern("never-branched")
        eng = make_engine("fast", sites=si)
        eng.branch("real", True)
        assert eng.n_branch_sites() == 1


class TestBranchTableMaterialization:
    """Regression (satellite fix): every branched site gets a table entry.

    A site whose counter sits at a saturation boundary (always-taken
    from the first outcome, or pinned at 0/3) must still materialize in
    the predictor table so ``n_sites()`` counts static branches.
    """

    def test_always_taken_site_is_materialized(self):
        p = BranchPredictor()
        for _ in range(4):  # reaches and then sits at saturation (3)
            p.predict_and_update("loop.backedge", True)
        assert p.n_sites() == 1
        assert p._table["loop.backedge"] == 3

    def test_never_taken_saturated_site_stays_materialized(self):
        p = BranchPredictor()
        for _ in range(5):
            p.predict_and_update("cold.path", False)
        assert p._table["cold.path"] == 0
        # Further not-taken outcomes at the floor still keep the entry.
        p.predict_and_update("cold.path", False)
        assert p.n_sites() == 1

    def test_prediction_semantics_unchanged(self):
        p = BranchPredictor()
        # Initial state is weak-taken: first taken outcome predicted.
        assert p.predict_and_update("s", True) is True
        assert p.predict_and_update("s", False) is False  # strong-taken now
        assert p.predict_and_update("s", False) is False  # weak-taken
        assert p.predict_and_update("s", False) is True  # weak-not-taken
