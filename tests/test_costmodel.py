"""Latency cost model."""

import pytest

from repro.memsim.costmodel import XEON_GOLD_6230, CostModel
from repro.memsim.counters import PerfCountersF


def counters(**kw) -> PerfCountersF:
    return PerfCountersF(**kw)


class TestCostModel:
    def test_pure_compute(self):
        m = CostModel()
        c = counters(instructions=40)
        assert m.cycles(c) == pytest.approx(10.0)  # 4-wide issue

    def test_dram_miss_dominates(self):
        m = CostModel()
        hit = counters(instructions=10, l1_hits=1)
        miss = counters(instructions=10, llc_misses=1)
        assert m.latency_ns(miss) > 3 * m.latency_ns(hit)

    def test_latency_monotone_in_misses(self):
        m = CostModel()
        lat = [
            m.latency_ns(counters(instructions=50, llc_misses=k))
            for k in range(5)
        ]
        assert lat == sorted(lat)

    def test_branch_miss_penalty(self):
        m = CostModel()
        base = counters(instructions=20)
        with_miss = counters(instructions=20, branch_misses=2)
        delta = m.cycles(with_miss) - m.cycles(base)
        assert delta == pytest.approx(2 * m.branch_miss_cycles)

    def test_fence_always_slower(self):
        m = CostModel()
        c = counters(instructions=60, llc_misses=3, l1_hits=5)
        assert m.latency_ns(c, fence=True) > m.latency_ns(c, fence=False)

    def test_fence_hurts_low_instruction_workloads_more(self):
        """The Figure 15 mechanism: few instructions -> big fence penalty."""
        m = CostModel()
        lean = counters(instructions=30, llc_misses=3)
        fat = counters(instructions=400, llc_misses=3)
        lean_slowdown = m.latency_ns(lean, True) / m.latency_ns(lean, False)
        fat_slowdown = m.latency_ns(fat, True) / m.latency_ns(fat, False)
        assert lean_slowdown > fat_slowdown

    def test_overlap_factor_range(self):
        m = CostModel()
        for instr in (0, 50, 200, 1000):
            f = m.overlap_factor(counters(instructions=instr), fence=False)
            assert m.mlp_floor <= f <= 1.0
        assert m.overlap_factor(counters(instructions=10), fence=True) == 1.0

    def test_overlap_saturates(self):
        m = CostModel()
        at_sat = m.overlap_factor(
            counters(instructions=m.mlp_saturation_instr), fence=False
        )
        beyond = m.overlap_factor(counters(instructions=10_000), fence=False)
        assert at_sat == pytest.approx(1.0)
        assert beyond == pytest.approx(1.0)

    def test_tlb_miss_costs(self):
        m = CostModel()
        base = counters(instructions=10)
        with_tlb = counters(instructions=10, tlb_misses=1)
        assert m.cycles(with_tlb) > m.cycles(base)

    def test_dram_cycles_conversion(self):
        m = CostModel(freq_ghz=2.0, dram_ns=100.0)
        assert m.dram_cycles == pytest.approx(200.0)

    def test_default_model_is_xeon_shaped(self):
        assert XEON_GOLD_6230.freq_ghz == pytest.approx(2.1)

    def test_realistic_lookup_in_paper_range(self):
        """A warm RMI-like profile should land in the paper's 100-400ns."""
        c = counters(
            instructions=50,
            branch_misses=1,
            l1_hits=3,
            llc_misses=3,
        )
        lat = XEON_GOLD_6230.latency_ns(c)
        assert 100 < lat < 400
