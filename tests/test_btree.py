"""BTree and IBTree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.traditional.btree import BTreeIndex, IBTreeIndex
from repro.memsim import PerfTracer

from conftest import build


@pytest.mark.parametrize("name", ["BTree", "IBTree"])
class TestBTreeFamily:
    @pytest.mark.parametrize("gap", [1, 2, 7, 64])
    def test_valid_on_all_datasets(self, all_datasets_small, name, gap):
        for ds_name, ds in all_datasets_small.items():
            idx = build(name, ds, gap=gap)
            probes = list(ds.keys[::39]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, (ds_name, gap)

    def test_extreme_probes(self, amzn_small, extreme_probe_keys, name):
        idx = build(name, amzn_small, gap=3)
        assert validate_index(idx, extreme_probe_keys) is None

    def test_gap1_exact_bounds_for_present_keys(self, amzn_small, name):
        idx = build(name, amzn_small, gap=1)
        for i in (0, 100, 4_999):
            bound = idx.lookup(int(amzn_small.keys[i]))
            assert bound.contains(i)
            assert len(bound) <= 2

    def test_bound_size_limited_by_gap(self, amzn_small, name):
        gap = 8
        idx = build(name, amzn_small, gap=gap)
        for key in amzn_small.keys[::67]:
            assert len(idx.lookup(int(key))) <= gap + 1

    def test_size_shrinks_with_gap(self, amzn_small, name):
        big = build(name, amzn_small, gap=1)
        small = build(name, amzn_small, gap=16)
        assert small.size_bytes() < big.size_bytes() / 8

    def test_invalid_config(self, name):
        cls = BTreeIndex if name == "BTree" else IBTreeIndex
        with pytest.raises(ValueError):
            cls(gap=0)
        with pytest.raises(ValueError):
            cls(fanout=1)

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=200, unique=True),
        st.integers(0, 2**64 - 1),
        st.sampled_from([1, 3, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_validity_property(self, name, keys, probe, gap):
        keys.sort()
        cls = BTreeIndex if name == "BTree" else IBTreeIndex
        idx = cls(gap=gap).build(np.array(keys, dtype=np.uint64))
        assert validate_index(idx, [probe]) is None


class TestBTreeSpecifics:
    def test_level_count_logarithmic(self, amzn_small):
        idx = build("BTree", amzn_small, gap=1, fanout=16)
        # 5000 keys at fanout 16: leaf + ceil(log16(5000/16))+ levels.
        assert 3 <= len(idx._levels) <= 4

    def test_descent_reads_one_node_per_level(self, amzn_small):
        idx = build("BTree", amzn_small, gap=1, fanout=16)
        t = PerfTracer()
        idx.lookup(int(amzn_small.keys[2500]), t)
        # Binary search within each node: <= log2(16)+1 reads per level.
        assert t.counters.reads <= len(idx._levels) * 5 + 2


class TestIBTreeSpecifics:
    def test_interpolation_uses_fewer_branches_on_uniform(self):
        keys = np.arange(0, 160_000, 11, dtype=np.uint64)
        ib = IBTreeIndex(gap=1).build(keys)
        bt = BTreeIndex(gap=1).build(keys)
        ti, tb = PerfTracer(), PerfTracer()
        for key in keys[:: len(keys) // 200]:
            ib.lookup(int(key), ti)
            bt.lookup(int(key), tb)
        assert ti.counters.branch_misses < tb.counters.branch_misses
