"""Adaptive radix tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.traditional.art import ARTIndex, _KINDS, _kind_for

from conftest import build


class TestARTValidity:
    @pytest.mark.parametrize("gap", [1, 4, 32])
    def test_valid_on_all_datasets(self, all_datasets_small, gap):
        for name, ds in all_datasets_small.items():
            idx = build("ART", ds, gap=gap)
            probes = list(ds.keys[::39]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, name

    def test_valid_on_absent_keys(self, amzn_small, amzn_workload):
        idx = build("ART", amzn_small, gap=2)
        assert validate_index(idx, amzn_workload.keys_py) is None

    def test_extreme_probes(self, amzn_small, extreme_probe_keys):
        idx = build("ART", amzn_small, gap=2)
        assert validate_index(idx, extreme_probe_keys) is None

    def test_dense_consecutive_keys(self):
        keys = np.arange(1000, 2000, dtype=np.uint64)
        idx = ARTIndex(gap=1).build(keys)
        probes = [0, 999, 1000, 1500, 1999, 2000, 2**64 - 1]
        assert validate_index(idx, probes) is None

    def test_keys_sharing_long_prefixes(self):
        base = 0xDEADBEEF00000000
        keys = np.array(sorted(base + np.uint64(i) for i in range(256)), dtype=np.uint64)
        idx = ARTIndex(gap=1).build(keys)
        assert validate_index(idx, [0, base - 1, base, base + 128, base + 255, base + 256, 2**64 - 1]) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=200, unique=True),
        st.integers(0, 2**64 - 1),
        st.sampled_from([1, 4]),
    )
    @settings(max_examples=50, deadline=None)
    def test_validity_property(self, keys, probe, gap):
        keys.sort()
        idx = ARTIndex(gap=gap).build(np.array(keys, dtype=np.uint64))
        assert validate_index(idx, [probe]) is None


class TestARTStructure:
    def test_kind_selection(self):
        assert _kind_for(1)[0] == 4
        assert _kind_for(4)[0] == 4
        assert _kind_for(5)[0] == 16
        assert _kind_for(17)[0] == 48
        assert _kind_for(49)[0] == 256
        with pytest.raises(AssertionError):
            _kind_for(257)

    def test_node_sizes_increase(self):
        sizes = [size for _, size in _KINDS]
        assert sizes == sorted(sizes)

    def test_path_compression_shrinks_trie(self):
        # Keys sharing 6 leading bytes: without path compression the trie
        # would carry 6 chain levels per key.
        keys = np.array(
            sorted(0xAABBCCDDEE000000 + np.uint64(i * 251) for i in range(500)),
            dtype=np.uint64,
        )
        idx = ARTIndex(gap=1).build(keys)
        # Loose bound: well under a chain-per-key trie.
        assert idx.size_bytes() < 500 * 200

    def test_size_accounting_positive(self, amzn_small):
        idx = build("ART", amzn_small, gap=1)
        assert idx.size_bytes() > len(amzn_small.keys) * 16  # leaves at least

    def test_32bit_keys_shallower(self, amzn_small):
        keys32 = np.unique((amzn_small.keys >> np.uint64(20)).astype(np.uint32))
        idx = ARTIndex(gap=1).build(keys32)
        assert idx._width == 4
        assert validate_index(idx, [0, int(keys32[17]), 2**32 - 1]) is None
