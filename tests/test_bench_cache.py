"""Persistent measurement cache: key scheme and lossless round-trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.bench import cache as cache_mod
from repro.bench.cache import (
    MeasurementCache,
    cache_key,
    measurement_from_record,
    measurement_to_record,
)
from repro.bench.cells import MeasureCell, freeze_config
from repro.bench.config import BenchSettings
from repro.bench.harness import Measurement
from repro.memsim.counters import PerfCountersF

SETTINGS = BenchSettings(n_keys=2_000, n_lookups=25, warmup=15)


def make_cell(**overrides) -> MeasureCell:
    base = dict(
        dataset="amzn",
        n_keys=2_000,
        seed=0,
        key_bits=64,
        index="RMI",
        config=freeze_config({"branching": 64}),
        n_lookups=25,
        warmup=15,
        warm=True,
        search="binary",
    )
    base.update(overrides)
    return MeasureCell(**base)


# Strategy: config dicts shaped like real size_sweep_configs output
# (int and string hyperparameter values).
config_values = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=8,
    ),
)
configs = st.dictionaries(
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=8,
    ),
    config_values,
    max_size=4,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False)


class TestCacheKey:
    def test_stable_for_equal_cells(self):
        assert cache_key(make_cell()) == cache_key(make_cell())

    def test_insensitive_to_config_dict_ordering(self):
        a = MeasureCell.make(
            "amzn", "RMI", {"branching": 64, "stage1": "cubic"}, SETTINGS
        )
        b = MeasureCell.make(
            "amzn", "RMI", {"stage1": "cubic", "branching": 64}, SETTINGS
        )
        assert a == b
        assert cache_key(a) == cache_key(b)

    @given(config_a=configs, config_b=configs)
    @hyp_settings(max_examples=200, deadline=None)
    def test_distinct_configs_never_collide(self, config_a, config_b):
        a = make_cell(config=freeze_config(config_a))
        b = make_cell(config=freeze_config(config_b))
        if config_a == config_b:
            assert cache_key(a) == cache_key(b)
        else:
            assert cache_key(a) != cache_key(b)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("dataset", "osm"),
            ("n_keys", 2_001),
            ("seed", 1),
            ("key_bits", 32),
            ("index", "PGM"),
            ("n_lookups", 26),
            ("warmup", 16),
            ("warm", False),
            ("search", "linear"),
        ],
    )
    def test_every_identity_field_feeds_the_key(self, field, value):
        assert cache_key(make_cell(**{field: value})) != cache_key(make_cell())

    def test_schema_version_feeds_the_key(self):
        cell = make_cell()
        assert cache_key(cell, schema_version=1) != cache_key(
            cell, schema_version=2
        )


def make_measurement(**overrides) -> Measurement:
    base = dict(
        index="RMI",
        dataset="amzn",
        config={"branching": 64},
        n_keys=2_000,
        size_bytes=1312,
        build_seconds=0.0123,
        counters=PerfCountersF(instructions=101.5, llc_misses=7.25),
        latency_ns=623.3987745285336,
        fence_latency_ns=817.1311507936507,
        avg_log2_bound=11.928845877923553,
        n_lookups=25,
        warm=True,
        search="binary",
        key_bits=64,
    )
    base.update(overrides)
    return Measurement(**base)


class TestLosslessRoundTrip:
    def test_record_round_trip_through_json(self):
        m = make_measurement()
        record = json.loads(json.dumps(measurement_to_record(m)))
        assert measurement_from_record(record) == m

    @given(
        latency=finite_floats,
        fence=finite_floats,
        bound=finite_floats,
        instructions=finite_floats,
        misses=finite_floats,
    )
    @hyp_settings(max_examples=100, deadline=None)
    def test_floats_survive_json_exactly(
        self, latency, fence, bound, instructions, misses
    ):
        m = make_measurement(
            latency_ns=latency,
            fence_latency_ns=fence,
            avg_log2_bound=bound,
            counters=PerfCountersF(
                instructions=instructions, llc_misses=misses
            ),
        )
        record = json.loads(json.dumps(measurement_to_record(m)))
        restored = measurement_from_record(record)
        assert restored == m


class TestMeasurementCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = MeasurementCache(str(tmp_path / "c"))
        cell, m = make_cell(), make_measurement()
        assert cache.get(cell) is None
        cache.put(cell, m)
        assert cache.get(cell) == m
        assert len(cache) == 1

    def test_hit_miss_stats(self, tmp_path):
        cache = MeasurementCache(str(tmp_path / "c"))
        cell = make_cell()
        cache.get(cell)
        cache.put(cell, make_measurement())
        cache.get(cell)
        assert (cache.hits, cache.misses) == (1, 1)
        cache.reset_stats()
        assert (cache.hits, cache.misses) == (0, 0)

    def test_distinct_cells_stored_separately(self, tmp_path):
        cache = MeasurementCache(str(tmp_path / "c"))
        cache.put(make_cell(), make_measurement())
        cache.put(make_cell(index="PGM"), make_measurement(index="PGM"))
        assert len(cache) == 2
        assert cache.get(make_cell(index="PGM")).index == "PGM"

    def test_schema_bump_invalidates_old_entries(self, tmp_path, monkeypatch):
        cache = MeasurementCache(str(tmp_path / "c"))
        cell = make_cell()
        cache.put(cell, make_measurement())
        assert cache.get(cell) is not None
        monkeypatch.setattr(
            cache_mod,
            "CACHE_SCHEMA_VERSION",
            cache_mod.CACHE_SCHEMA_VERSION + 1,
        )
        assert cache.get(cell) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = MeasurementCache(str(tmp_path / "c"))
        cell = make_cell()
        cache.put(cell, make_measurement())
        path = cache._path(cell)
        with open(path, "w") as f:
            f.write("{not json")
        assert cache.get(cell) is None

    def test_missing_directory_is_empty(self, tmp_path):
        cache = MeasurementCache(str(tmp_path / "nope"))
        assert len(cache) == 0
        assert cache.get(make_cell()) is None
