"""Measurement export (JSON/CSV)."""

import json

import pytest

from repro.bench.export import (
    measurement_record,
    read_measurement_records,
    write_measurements,
)
from repro.bench.harness import measure_index
from repro.datasets import make_dataset, make_workload


@pytest.fixture(scope="module")
def measurement():
    ds = make_dataset("amzn", 3_000, seed=51)
    wl = make_workload(ds, 150, seed=52)
    return measure_index(ds, wl, "RMI", {"branching": 64}, n_lookups=60)


class TestRecord:
    def test_contains_identity_and_counters(self, measurement):
        record = measurement_record(measurement)
        assert record["index"] == "RMI"
        assert record["dataset"] == "amzn"
        assert json.loads(record["config"]) == {"branching": 64}
        assert record["llc_misses"] >= 0
        assert record["latency_ns"] > 0

    def test_json_serializable(self, measurement):
        json.dumps(measurement_record(measurement))


class TestWriteRead:
    def test_json_roundtrip(self, measurement, tmp_path):
        path = str(tmp_path / "out.json")
        assert write_measurements(path, [measurement, measurement]) == 2
        records = read_measurement_records(path)
        assert len(records) == 2
        assert records[0]["index"] == "RMI"

    def test_csv_roundtrip(self, measurement, tmp_path):
        path = str(tmp_path / "out.csv")
        assert write_measurements(path, [measurement]) == 1
        records = read_measurement_records(path)
        assert len(records) == 1
        assert records[0]["dataset"] == "amzn"
        assert float(records[0]["latency_ns"]) > 0

    def test_unknown_extension_rejected(self, measurement, tmp_path):
        with pytest.raises(ValueError):
            write_measurements(str(tmp_path / "out.xlsx"), [measurement])
        with pytest.raises(ValueError):
            read_measurement_records(str(tmp_path / "out.xlsx"))

    def test_empty_csv(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        assert write_measurements(path, []) == 0


class TestCliFlag:
    def test_save_measurements_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        path = str(tmp_path / "m.json")
        rc = main(
            [
                "--experiment",
                "fig7",
                "--quick",
                "--n-keys",
                "2500",
                "--n-lookups",
                "40",
                "--datasets",
                "amzn",
                "--save-measurements",
                path,
            ]
        )
        assert rc == 0
        records = read_measurement_records(path)
        assert records
        assert {r["index"] for r in records} >= {"RMI", "BTree"}
