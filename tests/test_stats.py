"""OLS regression statistics."""

import numpy as np
import pytest

from repro.bench.stats import ols


class TestOls:
    def test_recovers_known_coefficients(self):
        rng = np.random.default_rng(0)
        x1 = rng.normal(size=200)
        x2 = rng.normal(size=200)
        y = 3.0 + 2.0 * x1 - 0.5 * x2 + rng.normal(scale=0.01, size=200)
        r = ols({"x1": x1, "x2": x2}, y)
        assert r.coefficient("x1").beta == pytest.approx(2.0, abs=0.01)
        assert r.coefficient("x2").beta == pytest.approx(-0.5, abs=0.01)
        assert r.coefficient("intercept").beta == pytest.approx(3.0, abs=0.01)
        assert r.r_squared > 0.999

    def test_significance(self):
        rng = np.random.default_rng(1)
        x1 = rng.normal(size=300)
        noise = rng.normal(size=300)
        y = 5.0 * x1 + rng.normal(scale=0.5, size=300)
        r = ols({"signal": x1, "noise_col": noise}, y)
        assert r.coefficient("signal").significant()
        assert not r.coefficient("noise_col").significant()

    def test_standardized_coefficients(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=500)
        y = 4.0 * x  # perfectly explained
        r = ols({"x": x}, y)
        assert r.coefficient("x").standardized == pytest.approx(1.0, abs=1e-6)

    def test_r_squared_zero_for_pure_noise(self):
        rng = np.random.default_rng(3)
        r = ols({"x": rng.normal(size=500)}, rng.normal(size=500))
        assert r.r_squared < 0.05

    def test_adjusted_below_r2(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=50)
        y = x + rng.normal(scale=0.5, size=50)
        r = ols({"x": x, "junk": rng.normal(size=50)}, y)
        assert r.adjusted_r_squared <= r.r_squared

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ols({"x": [1, 2, 3]}, [1, 2])

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            ols({"x": [1.0, 2.0]}, [1.0, 2.0])

    def test_unknown_coefficient_keyerror(self):
        r = ols({"x": np.arange(10.0)}, np.arange(10.0) + np.random.default_rng(0).normal(size=10))
        with pytest.raises(KeyError):
            r.coefficient("y")


class TestCorrelations:
    def test_perfect_positive_and_negative(self):
        from repro.bench.stats import correlations

        x = np.arange(100.0)
        out = correlations({"pos": x, "neg": -x}, x)
        assert out["pos"] == pytest.approx(1.0)
        assert out["neg"] == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        from repro.bench.stats import correlations

        rng = np.random.default_rng(5)
        out = correlations({"noise": rng.normal(size=2_000)}, rng.normal(size=2_000))
        assert abs(out["noise"]) < 0.1

    def test_constant_feature_zero(self):
        from repro.bench.stats import correlations

        out = correlations({"const": np.ones(10)}, np.arange(10.0))
        assert out["const"] == 0.0

    def test_length_mismatch(self):
        from repro.bench.stats import correlations

        with pytest.raises(ValueError):
            correlations({"x": [1.0, 2.0]}, [1.0, 2.0, 3.0])
