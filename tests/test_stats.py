"""OLS regression statistics and percentile helpers."""

import statistics

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.stats import (
    TAIL_PERCENTILES,
    ols,
    p50,
    p95,
    p99,
    p999,
    percentile,
    percentiles,
)


class TestOls:
    def test_recovers_known_coefficients(self):
        rng = np.random.default_rng(0)
        x1 = rng.normal(size=200)
        x2 = rng.normal(size=200)
        y = 3.0 + 2.0 * x1 - 0.5 * x2 + rng.normal(scale=0.01, size=200)
        r = ols({"x1": x1, "x2": x2}, y)
        assert r.coefficient("x1").beta == pytest.approx(2.0, abs=0.01)
        assert r.coefficient("x2").beta == pytest.approx(-0.5, abs=0.01)
        assert r.coefficient("intercept").beta == pytest.approx(3.0, abs=0.01)
        assert r.r_squared > 0.999

    def test_significance(self):
        rng = np.random.default_rng(1)
        x1 = rng.normal(size=300)
        noise = rng.normal(size=300)
        y = 5.0 * x1 + rng.normal(scale=0.5, size=300)
        r = ols({"signal": x1, "noise_col": noise}, y)
        assert r.coefficient("signal").significant()
        assert not r.coefficient("noise_col").significant()

    def test_standardized_coefficients(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=500)
        y = 4.0 * x  # perfectly explained
        r = ols({"x": x}, y)
        assert r.coefficient("x").standardized == pytest.approx(1.0, abs=1e-6)

    def test_r_squared_zero_for_pure_noise(self):
        rng = np.random.default_rng(3)
        r = ols({"x": rng.normal(size=500)}, rng.normal(size=500))
        assert r.r_squared < 0.05

    def test_adjusted_below_r2(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=50)
        y = x + rng.normal(scale=0.5, size=50)
        r = ols({"x": x, "junk": rng.normal(size=50)}, y)
        assert r.adjusted_r_squared <= r.r_squared

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ols({"x": [1, 2, 3]}, [1, 2])

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            ols({"x": [1.0, 2.0]}, [1.0, 2.0])

    def test_unknown_coefficient_keyerror(self):
        r = ols({"x": np.arange(10.0)}, np.arange(10.0) + np.random.default_rng(0).normal(size=10))
        with pytest.raises(KeyError):
            r.coefficient("y")


finite_samples = st.lists(
    st.floats(
        min_value=-1e12, max_value=1e12,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=2,
    max_size=200,
)


class TestPercentile:
    """Exact-interpolation percentiles vs ``statistics.quantiles``."""

    @given(finite_samples)
    def test_matches_statistics_inclusive_percentiles(self, values):
        cuts = statistics.quantiles(values, n=100, method="inclusive")
        for i in (50, 95, 99):
            assert percentile(values, float(i)) == pytest.approx(
                cuts[i - 1], rel=1e-9, abs=1e-6
            )

    @given(finite_samples)
    def test_p999_matches_statistics_permille(self, values):
        cuts = statistics.quantiles(values, n=1000, method="inclusive")
        assert p999(values) == pytest.approx(cuts[998], rel=1e-9, abs=1e-6)

    @given(finite_samples)
    def test_matches_numpy_linear_interpolation(self, values):
        for q in (0.0, 12.5, 50.0, 99.9, 100.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(np.array(values, dtype=np.float64), q)),
                rel=1e-9,
                abs=1e-6,
            )

    @given(finite_samples, st.floats(min_value=0.0, max_value=100.0))
    def test_bounded_by_extremes_and_monotone(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)
        assert percentile(values, 0.0) == min(values)
        assert percentile(values, 100.0) == max(values)

    def test_known_interpolation(self):
        # rank = 0.5 * 3 = 1.5 -> halfway between 20 and 30.
        assert percentile([10, 20, 30, 40], 50) == 25.0
        assert p50([1.0, 2.0, 3.0]) == 2.0
        assert p95([0.0] * 19 + [100.0]) == pytest.approx(5.0)

    def test_singleton_and_empty(self):
        assert percentile([7.0], 99.9) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentiles([], (50.0,))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], 101)
        with pytest.raises(ValueError):
            percentiles([1.0, 2.0], (50.0, 200.0))

    @given(finite_samples)
    def test_percentiles_consistent_with_percentile(self, values):
        out = percentiles(values)
        assert set(out) == set(TAIL_PERCENTILES)
        for q, v in out.items():
            assert v == percentile(values, q)
        assert out[50.0] == p50(values)
        assert out[95.0] == p95(values)
        assert out[99.0] == p99(values)
        assert out[99.9] == p999(values)

    def test_unsorted_input_is_sorted_internally(self):
        assert percentile([30, 10, 40, 20], 50) == 25.0


class TestCorrelations:
    def test_perfect_positive_and_negative(self):
        from repro.bench.stats import correlations

        x = np.arange(100.0)
        out = correlations({"pos": x, "neg": -x}, x)
        assert out["pos"] == pytest.approx(1.0)
        assert out["neg"] == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        from repro.bench.stats import correlations

        rng = np.random.default_rng(5)
        out = correlations({"noise": rng.normal(size=2_000)}, rng.normal(size=2_000))
        assert abs(out["noise"]) < 0.1

    def test_constant_feature_zero(self):
        from repro.bench.stats import correlations

        out = correlations({"const": np.ones(10)}, np.arange(10.0))
        assert out["const"] == 0.0

    def test_length_mismatch(self):
        from repro.bench.stats import correlations

        with pytest.raises(ValueError):
            correlations({"x": [1.0, 2.0]}, [1.0, 2.0, 3.0])
