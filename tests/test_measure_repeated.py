"""Chunked measurements with dispersion."""

import pytest

from repro.bench.harness import build_index, measure_repeated
from repro.datasets import make_dataset, make_workload


@pytest.fixture(scope="module")
def setup():
    ds = make_dataset("amzn", 4_000, seed=61)
    wl = make_workload(ds, 2_500, seed=62)
    built = build_index(ds, "RMI", {"branching": 128})
    return built, wl


class TestMeasureRepeated:
    def test_chunk_count(self, setup):
        built, wl = setup
        r = measure_repeated(built, wl, n_chunks=4, chunk_lookups=100, warmup=50)
        assert len(r.chunk_latencies_ns) == 4

    def test_dispersion_bounded(self, setup):
        built, wl = setup
        r = measure_repeated(built, wl, n_chunks=5, chunk_lookups=150, warmup=50)
        assert r.std_latency_ns >= 0.0
        # Dispersion stays below the mean itself (chunks measure the same
        # structure; at this tiny scale later chunks run progressively
        # warmer, which is the dominant spread).
        assert r.std_latency_ns < r.mean_latency_ns
        assert r.mean_latency_ns > 0

    def test_mean_close_to_single_measurement(self, setup):
        from repro.bench.harness import measure

        built, wl = setup
        r = measure_repeated(built, wl, n_chunks=4, chunk_lookups=150, warmup=100)
        single = measure(built, wl, n_lookups=600, warmup=100)
        assert r.mean_latency_ns == pytest.approx(single.latency_ns, rel=0.25)
