"""Every script in examples/ must run cleanly from a fresh interpreter.

The examples double as living documentation of the public API; running
each one in a subprocess (as a user would) catches import breakage,
renamed keywords, and drifted APIs that unit tests can miss.
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")
EXAMPLE_SCRIPTS = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.py")))


def test_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 7


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[os.path.basename(s) for s in EXAMPLE_SCRIPTS]
)
def test_example_runs_cleanly(script):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.run(
        [sys.executable, script],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, (
        f"{os.path.basename(script)} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{os.path.basename(script)} printed nothing"
