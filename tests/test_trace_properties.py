"""Property tests for trace recording and the TraceStore budget.

Two families:

* Recorder compression round-trip -- the recorder's ``K_REPEAT``
  run-length compression is lossless with respect to everything the
  simulator observes: event *counts* reconstruct exactly, and replaying
  the compressed trace yields byte-identical counters to the
  uncompressed event stream (on every engine; the differential suite
  covers engine equivalence, here we pin the compression itself).
* TraceStore invariants -- the event budget is never exceeded under
  either full-budget policy, FIFO eviction is deterministic in the put
  sequence, and an oversized trace is always declined.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import PerfTracer, SiteInterner, TraceRecorder, TraceStore
from repro.memsim.trace import K_BRANCH, K_INSTR, K_READ, K_REPEAT, Trace

_SITES = ["a.cmp", "b.descend", "c.clamp"]
_BASES = [0, 4096, 65536, 1 << 20, (1 << 20) + 64, 1 << 30]


def _streams():
    read = st.tuples(
        st.just("read"),
        st.sampled_from(_BASES),
        st.integers(0, 300),
        st.sampled_from([1, 2, 8, 24, 64, 200]),
    )
    branch = st.tuples(
        st.just("branch"), st.sampled_from(_SITES), st.booleans()
    )
    instr = st.tuples(st.just("instr"), st.integers(1, 9))
    return st.lists(st.one_of(read, branch, instr), max_size=250)


def _apply(tracer, stream):
    for ev in stream:
        if ev[0] == "read":
            tracer.read(ev[1] + ev[2], ev[3])
        elif ev[0] == "branch":
            tracer.branch(ev[1], ev[2])
        else:
            tracer.instr(ev[1])


# ---------------------------------------------------------------------------
# Recorder compression round-trip
# ---------------------------------------------------------------------------


@given(_streams())
@settings(max_examples=120, deadline=None)
def test_recorder_event_counts_round_trip(stream):
    """Compressed event counts reconstruct the original call counts."""
    rec = TraceRecorder(sites=SiteInterner())
    _apply(rec, stream)
    trace = rec.finish()

    kinds = trace.kinds.tolist()
    a = trace.a.tolist()
    b = trace.b.tolist()
    n_reads = sum(1 for k in kinds if k == K_READ) + sum(
        bb for k, bb in zip(kinds, b) if k == K_REPEAT
    )
    n_branches = sum(1 for k in kinds if k == K_BRANCH)
    instr_total = sum(aa for k, aa in zip(kinds, a) if k == K_INSTR)

    assert n_reads == sum(1 for ev in stream if ev[0] == "read")
    assert n_branches == sum(1 for ev in stream if ev[0] == "branch")
    assert instr_total == sum(ev[1] for ev in stream if ev[0] == "instr")
    # Compression only shrinks: never more events than tracer calls.
    assert len(trace) <= len(stream)


@given(_streams())
@settings(max_examples=120, deadline=None)
def test_recorder_compression_is_counter_lossless(stream):
    """Replaying the compressed trace == executing the raw stream."""
    sites = SiteInterner()
    rec = TraceRecorder(sites=sites)
    _apply(rec, stream)
    trace = rec.finish()

    direct = PerfTracer(engine="reference", sites=sites)
    _apply(direct, stream)

    replayed = PerfTracer(engine="reference", sites=sites)
    replayed.replay(trace)
    assert replayed.snapshot() == direct.snapshot()


@given(_streams())
@settings(max_examples=60, deadline=None)
def test_recorder_tee_preserves_inner_counters(stream):
    """The recorder forwards every event to its inner tracer unchanged."""
    sites = SiteInterner()
    plain = PerfTracer(engine="reference", sites=sites)
    _apply(plain, stream)

    teed = PerfTracer(engine="reference", sites=sites)
    rec = TraceRecorder(inner=teed, sites=sites)
    _apply(rec, stream)
    assert teed.snapshot() == plain.snapshot()


def test_repeat_events_merge_across_instr_and_branch():
    """Interleaved instr/branch events do not break a repeat run."""
    rec = TraceRecorder(sites=SiteInterner())
    rec.read(128, 8)
    for i in range(5):
        rec.read(130, 1)
        rec.instr(3)
        rec.branch("x", i % 2 == 0)
    trace = rec.finish()
    kinds = trace.kinds.tolist()
    assert kinds.count(K_REPEAT) == 1
    assert trace.b.tolist()[kinds.index(K_REPEAT)] == 5


# ---------------------------------------------------------------------------
# TraceStore budget and eviction invariants
# ---------------------------------------------------------------------------


def _trace_of(n_events: int) -> Trace:
    return Trace([K_INSTR] * n_events, [1] * n_events, [0] * n_events)


@given(
    st.lists(st.tuples(st.integers(0, 40), st.integers(1, 30)), max_size=60),
    st.integers(1, 80),
    st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_store_never_exceeds_budget(puts, budget, evict):
    store = TraceStore(max_events=budget, evict=evict)
    for key, size in puts:
        already = store.get(key) is not None
        admitted = store.put(key, _trace_of(size))
        assert store.events <= store.max_events
        if admitted and not already:
            assert store.events >= size
    # Bookkeeping is consistent with the resident set.
    assert store.events == sum(
        len(t) for t, _ in (store.get(k) or (Trace([], [], []), None)
                            for k in list(store._traces))
    )


def test_store_rejects_when_full_without_eviction():
    store = TraceStore(max_events=10)
    assert store.put("a", _trace_of(6))
    assert not store.put("b", _trace_of(5))
    assert store.rejects == 1
    assert store.evictions == 0
    assert store.get("a") is not None
    assert len(store) == 1


def test_store_evicts_fifo_deterministically():
    store = TraceStore(max_events=10, evict=True)
    assert store.put("a", _trace_of(4))
    assert store.put("b", _trace_of(4))
    # "c" needs 4 events; only "a" (the oldest) must go.
    assert store.put("c", _trace_of(4))
    assert store.evictions == 1
    assert store.get("a") is None
    assert store.get("b") is not None
    assert store.get("c") is not None
    # A newcomer needing the whole budget evicts everything else.
    assert store.put("d", _trace_of(10))
    assert store.evictions == 3
    assert len(store) == 1 and store.events == 10


def test_store_declines_oversized_trace_even_with_eviction():
    store = TraceStore(max_events=10, evict=True)
    assert store.put("a", _trace_of(4))
    assert not store.put("big", _trace_of(11))
    assert store.rejects == 1
    assert store.evictions == 0  # nothing was sacrificed for a lost cause
    assert store.get("a") is not None


def test_store_duplicate_key_is_idempotent():
    store = TraceStore(max_events=10, evict=True)
    assert store.put("a", _trace_of(6))
    assert store.put("a", _trace_of(6))  # same key: no double charge
    assert store.events == 6
    assert store.evictions == 0


@given(st.lists(st.integers(0, 25), min_size=1, max_size=50))
@settings(max_examples=80, deadline=None)
def test_store_eviction_matches_fifo_model(keys):
    """The resident set is exactly what a FIFO model predicts.

    Determinism: the surviving keys and their order are a pure function
    of the put sequence (re-putting a resident key is a no-op, so it
    does not refresh the key's eviction position).
    """
    size = 3
    budget = 12  # room for 4 resident traces
    store = TraceStore(max_events=budget, evict=True)
    model: dict = {}
    for k in keys:
        store.put(k, _trace_of(size))
        if k not in model:
            while (len(model) + 1) * size > budget:
                del model[next(iter(model))]
            model[k] = True
    assert list(store._traces) == list(model)
