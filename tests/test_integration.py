"""Cross-module integration: every index against every dataset.

These are the benchmark's core guarantees: any registered ordered index
returns valid bounds for arbitrary probe keys on all four dataset
distributions, and the full measurement pipeline (index + last-mile +
payload verification) completes without a verification failure.
"""

import numpy as np
import pytest

from repro.bench.harness import measure_index
from repro.core.registry import available_indexes, get_index_class
from repro.core.validation import validate_index
from repro.datasets import make_dataset, make_workload

from conftest import build

ORDERED_CONFIGS = {
    "BS": {},
    "RBS": {"radix_bits": 8},
    "BTree": {"gap": 3},
    "IBTree": {"gap": 3},
    "FAST": {"gap": 3},
    "ART": {"gap": 3},
    "FST": {"gap": 3},
    "Wormhole": {"gap": 3},
    "RMI": {"branching": 128},
    "PGM": {"epsilon": 24},
    "RS": {"epsilon": 24, "radix_bits": 8},
}


@pytest.mark.parametrize("index_name", sorted(ORDERED_CONFIGS))
@pytest.mark.parametrize("ds_name", ["amzn", "face", "osm", "wiki"])
def test_every_index_valid_on_every_dataset(
    all_datasets_small, index_name, ds_name
):
    ds = all_datasets_small[ds_name]
    idx = build(index_name, ds, **ORDERED_CONFIGS[index_name])
    wl = make_workload(ds, 150, seed=9, mode="mixed")
    probes = wl.keys_py + [0, 1, 2**63, 2**64 - 1]
    assert validate_index(idx, probes) is None


@pytest.mark.parametrize("index_name", sorted(ORDERED_CONFIGS))
def test_full_measurement_pipeline(index_name):
    ds = make_dataset("wiki", 3_000, seed=31)
    wl = make_workload(ds, 300, seed=32)
    m = measure_index(
        ds, wl, index_name, ORDERED_CONFIGS[index_name], n_lookups=120, warmup=60
    )
    assert m.latency_ns > 0
    assert m.counters.instructions >= 0


def test_size_sweeps_grow_monotonically():
    ds = make_dataset("amzn", 6_000, seed=33)
    for index_name in ("RMI", "PGM", "RS", "BTree", "RBS"):
        cls = get_index_class(index_name)
        sizes = []
        for config in cls.size_sweep_configs(ds.n):
            sizes.append(build(index_name, ds, **config).size_bytes())
        assert sizes == sorted(sizes), index_name


def test_registry_covers_paper_table1():
    assert len(available_indexes()) >= 13


def test_checksum_verification_end_to_end():
    """The paper sums payloads to check correctness; so do we."""
    ds = make_dataset("face", 2_000, seed=41)
    wl = make_workload(ds, 200, seed=42, mode="present")
    idx = build("PGM", ds, epsilon=16)
    from repro.search.last_mile import binary_search
    from repro.memsim import AddressSpace, TracedArray

    total = 0
    for key in wl.keys_py:
        bound = idx.lookup(key)
        pos = binary_search(idx.data, key, bound)
        total += int(ds.payloads[pos])
    assert total == wl.expected_checksum()
