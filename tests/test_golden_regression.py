"""Golden regression: the measurement pipeline must not silently drift.

``tests/data/golden_measurements.json`` holds counters recorded by the
pre-refactor harness (``common.dataset_and_workload`` +
``cached_measure``) at a tiny scale, for (index, dataset, config) cells
that also appear -- at the paper's full scale -- in ``results_full.json``.
A fresh run today, serial or parallel, must reproduce those counters
exactly; any mismatch means the refactor changed measurement behavior,
not just its plumbing.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.cells import MeasureCell, freeze_config
from repro.bench.parallel import run_cells

HERE = os.path.dirname(__file__)
GOLDEN_PATH = os.path.join(HERE, "data", "golden_measurements.json")
RESULTS_FULL_PATH = os.path.join(HERE, "..", "results_full.json")

with open(GOLDEN_PATH) as f:
    GOLDEN = json.load(f)


def cell_of(record: dict) -> MeasureCell:
    return MeasureCell(
        dataset=record["dataset"],
        n_keys=record["n_keys"],
        seed=record["seed"],
        key_bits=record["key_bits"],
        index=record["index"],
        config=freeze_config(record["config"]),
        n_lookups=record["n_lookups"],
        warmup=record["warmup"],
        warm=record["warm"],
        search=record["search"],
    )


def assert_matches_golden(measurement, record: dict) -> None:
    assert measurement.index == record["index"]
    assert measurement.size_bytes == record["size_bytes"]
    assert measurement.latency_ns == record["latency_ns"]
    assert measurement.fence_latency_ns == record["fence_latency_ns"]
    assert measurement.avg_log2_bound == record["avg_log2_bound"]
    for name, value in record["counters"].items():
        assert getattr(measurement.counters, name) == value, name


class TestGoldenCells:
    @pytest.mark.parametrize(
        "record",
        GOLDEN,
        ids=[
            f"{r['index']}-{r['dataset']}-{r['key_bits']}bit" for r in GOLDEN
        ],
    )
    def test_serial_run_matches_recorded_counters(self, record):
        assert_matches_golden(cell_of(record).run(), record)

    def test_parallel_run_matches_recorded_counters(self):
        cells = [cell_of(r) for r in GOLDEN]
        measurements, stats = run_cells(cells, jobs=2, memo={})
        assert stats.executed == len(GOLDEN)
        for measurement, record in zip(measurements, GOLDEN):
            assert_matches_golden(measurement, record)


class TestGoldenProvenance:
    """The golden cells are scaled-down versions of full-run cells."""

    def test_64bit_cells_appear_in_results_full(self):
        with open(RESULTS_FULL_PATH) as f:
            full = json.load(f)
        full_combos = {
            (r["index"], r["dataset"], r["config"]) for r in full
        }
        for record in GOLDEN:
            if record["key_bits"] != 64:
                continue  # full records do not carry key_bits
            combo = (
                record["index"],
                record["dataset"],
                json.dumps(record["config"], sort_keys=True),
            )
            assert combo in full_combos, combo

    def test_golden_covers_a_handful_of_heterogeneous_cells(self):
        assert len(GOLDEN) >= 5
        assert {r["index"] for r in GOLDEN} >= {"RMI", "PGM", "BTree", "BS"}
        assert {r["dataset"] for r in GOLDEN} >= {"amzn", "osm"}
