"""Batch-predict kernels == scalar lookups, element-wise.

``repro.learned.kernels`` vectorizes the model phase of RMI/PGM/RS
lookups (and the last-mile binary search) over sorted key batches.  The
contract is *bit*-equality with the scalar path: same positions, same
error bounds, and a synthesized per-key event stream whose replay is
counter-identical to recording the scalar lookup -- for present keys,
duplicate probes, and out-of-range probes alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import _LOOP_INSTR, build_index
from repro.datasets.loader import Dataset
from repro.learned import kernels
from repro.memsim import PerfTracer, SiteInterner, TraceRecorder
from repro.search.last_mile import SEARCH_FUNCTIONS

_CONFIGS = [
    ("RMI", {"branching": 8}),
    ("RMI", {"branching": 64, "stage1": "linear"}),
    ("PGM", {"epsilon": 4}),
    ("RS", {"radix_bits": 8, "epsilon": 4}),
]
_IDS = [f"{n}-{'-'.join(map(str, c.values()))}" for n, c in _CONFIGS]


def _dataset(key_set, key_bits=64) -> Dataset:
    keys = np.array(sorted(key_set), dtype=np.uint64)
    return Dataset("synth", keys, np.arange(len(keys), dtype=np.uint64),
                   key_bits=key_bits)


def _probes(keys: np.ndarray, picks) -> np.ndarray:
    """Present keys, near-misses, out-of-range extremes, and duplicates."""
    lo_k = int(keys[0])
    hi_k = int(keys[-1])
    out = []
    for idx, kind in picks:
        if kind == "present":
            out.append(int(keys[idx % len(keys)]))
        elif kind == "absent":
            out.append(int(keys[idx % len(keys)]) ^ 1)
        elif kind == "low":
            out.append(max(lo_k - 1 - idx, 0))
        else:
            out.append(min(hi_k + 1 + idx, (1 << 64) - 1))
    # Guaranteed duplicates and extremes in every batch.
    out += [out[0], int(keys[0]), int(keys[-1]), 0, (1 << 64) - 1]
    return np.array(out, dtype=np.uint64)


def _scalar_lookup(built, key, search, sites):
    """One scalar lookup, recorded exactly as the measure loop feeds it."""
    rec = TraceRecorder(sites=sites)
    bound = built.index.lookup(key, rec)
    pos = SEARCH_FUNCTIONS[search](built.data, key, bound, rec)
    rec.instr(_LOOP_INSTR)
    if pos < len(built.data):
        built.payloads.touch(pos, rec)
    return bound, pos, rec.finish()


def _assert_batch_matches_scalar(built, probes):
    sites = SiteInterner()
    batch = kernels.batch_lookups(
        built.index, built.data, built.payloads, probes, "binary", sites
    )
    pos_l = batch.pos.tolist()
    lo_l = batch.lo.tolist()
    hi_l = batch.hi.tolist()
    for r, key in enumerate(probes.tolist()):
        bound, pos, trace = _scalar_lookup(built, key, "binary", sites)
        assert (lo_l[r], hi_l[r]) == (bound.lo, bound.hi), key
        assert pos_l[r] == pos, key
        # Same stream, counter-wise: replay both on fresh reference
        # engines (the stream is state-independent by construction).
        t_scalar = PerfTracer(engine="reference", sites=sites)
        t_scalar.replay(trace)
        t_batch = PerfTracer(engine="reference", sites=sites)
        t_batch.replay(batch.trace_for(r))
        assert t_batch.snapshot() == t_scalar.snapshot(), key


@pytest.mark.parametrize("index_name,config", _CONFIGS, ids=_IDS)
@given(
    key_set=st.sets(st.integers(0, (1 << 63) - 1), min_size=60, max_size=160),
    picks=st.lists(
        st.tuples(
            st.integers(0, 1 << 20),
            st.sampled_from(["present", "absent", "low", "high"]),
        ),
        min_size=1,
        max_size=25,
    ),
)
@settings(max_examples=15, deadline=None)
def test_batch_equals_scalar_elementwise(index_name, config, key_set, picks):
    ds = _dataset(key_set)
    built = build_index(ds, index_name, config)
    _assert_batch_matches_scalar(built, _probes(ds.keys, picks))


@pytest.mark.parametrize("index_name,config", _CONFIGS, ids=_IDS)
def test_batch_equals_scalar_32bit(index_name, config):
    rng = np.random.default_rng(11)
    keys = np.unique(rng.integers(0, 1 << 32, 500, dtype=np.uint64))
    ds = _dataset(keys, key_bits=32)
    built = build_index(ds, index_name, config)
    picks = [(i * 37, k) for i, k in enumerate(
        ["present", "absent", "low", "high"] * 6
    )]
    _assert_batch_matches_scalar(built, _probes(ds.keys, picks))


def test_batch_bounds_alone_matches_lookup():
    ds = _dataset(range(0, 50_000, 7))
    built = build_index(ds, "PGM", {"epsilon": 16})
    probes = np.array(
        [0, 7, 8, 49_993, 49_999, 1 << 60, 3, 3, 3], dtype=np.uint64
    )
    lo, hi = kernels.batch_bounds(built.index, probes)
    for r, key in enumerate(probes.tolist()):
        bound = built.index.lookup(key, PerfTracer(engine="reference"))
        assert (int(lo[r]), int(hi[r])) == (bound.lo, bound.hi), key


def test_supports_is_exact_class_match():
    ds = _dataset(range(0, 3_000, 3))
    assert kernels.supports(build_index(ds, "RMI", {"branching": 8}).index)
    assert not kernels.supports(build_index(ds, "BTree", {}).index)


def test_unsupported_index_and_search_raise():
    ds = _dataset(range(0, 3_000, 3))
    btree = build_index(ds, "BTree", {})
    probes = np.array([3, 9], dtype=np.uint64)
    with pytest.raises(TypeError, match="no batch kernel"):
        kernels.batch_bounds(btree.index, probes)
    rmi = build_index(ds, "RMI", {"branching": 8})
    with pytest.raises(ValueError, match="no batched synthesis"):
        kernels.batch_lookups(
            rmi.index, rmi.data, rmi.payloads, probes, "linear",
            SiteInterner(),
        )
