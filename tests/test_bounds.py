"""SearchBound and lower-bound semantics (paper Section 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import SearchBound, lower_bound_position


class TestSearchBound:
    def test_contains_half_open(self):
        b = SearchBound(2, 5)
        assert not b.contains(1)
        assert b.contains(2)
        assert b.contains(4)
        assert not b.contains(5)

    def test_len(self):
        assert len(SearchBound(3, 10)) == 7
        assert len(SearchBound(3, 3)) == 0

    def test_negative_lo_rejected(self):
        with pytest.raises(ValueError):
            SearchBound(-1, 4)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            SearchBound(5, 4)

    def test_clamp_inside(self):
        assert SearchBound(2, 5).clamp(100) == SearchBound(2, 5)

    def test_clamp_hi_overflow(self):
        assert SearchBound(2, 500).clamp(10) == SearchBound(2, 11)

    def test_clamp_lo_overflow(self):
        b = SearchBound(50, 60).clamp(10)
        assert b.lo == 10
        assert b.hi == 11

    def test_clamp_never_empty(self):
        b = SearchBound(10, 10).clamp(10)
        assert len(b) >= 1

    def test_around_center(self):
        b = SearchBound.around(50, 3, 100)
        assert b.contains(47) and b.contains(53)

    def test_around_clamps_low(self):
        b = SearchBound.around(1, 5, 100)
        assert b.lo == 0

    def test_full_covers_all_positions(self):
        b = SearchBound.full(10)
        assert b.contains(0) and b.contains(10)

    @given(st.integers(0, 1000), st.integers(0, 50), st.integers(1, 1000))
    def test_around_always_valid_range(self, estimate, error, n):
        b = SearchBound.around(estimate, error, n)
        assert 0 <= b.lo < b.hi <= n + 1


class TestLowerBoundPosition:
    def test_present_key(self):
        assert lower_bound_position([1, 3, 5], 3) == 1

    def test_absent_key(self):
        assert lower_bound_position([1, 3, 5], 4) == 2

    def test_below_all(self):
        assert lower_bound_position([1, 3, 5], 0) == 0

    def test_above_all(self):
        assert lower_bound_position([1, 3, 5], 6) == 3

    def test_equal_to_max(self):
        assert lower_bound_position([1, 3, 5], 5) == 2

    @given(st.lists(st.integers(0, 2**64 - 1), unique=True), st.integers(0, 2**64 - 1))
    def test_matches_definition(self, keys, probe):
        keys.sort()
        pos = lower_bound_position(keys, probe)
        assert all(k < probe for k in keys[:pos])
        assert all(k >= probe for k in keys[pos:])
