"""Replay-aware measurement: same numbers, less index Python.

``measure(..., replay=True)`` must be a pure optimization -- every
Measurement field identical to direct execution, on either engine, warm
or cold, even when the trace store's budget forces a partial fallback.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.harness import build_index, measure, measure_repeated
from repro.datasets import make_dataset, make_workload
from repro.memsim import TraceStore


@pytest.fixture(scope="module")
def setup():
    ds = make_dataset("amzn", 4_000, seed=61)
    wl = make_workload(ds, 900, seed=62)
    return ds, wl


def fresh_built(ds):
    return build_index(ds, "RMI", {"branching": 128})


def assert_same_measurement(a, b):
    """Field-wise equality, ignoring build wall-clock."""
    for f in dataclasses.fields(a):
        if f.name == "build_seconds":
            continue
        assert getattr(a, f.name) == getattr(b, f.name), f.name


KW = dict(n_lookups=200, warmup=100)


class TestReplayIdentity:
    def test_replay_matches_direct_execution(self, setup):
        ds, wl = setup
        direct = measure(fresh_built(ds), wl, **KW)
        replayed = measure(fresh_built(ds), wl, replay=True, **KW)
        assert_same_measurement(direct, replayed)

    def test_second_pass_is_pure_replay_and_identical(self, setup):
        ds, wl = setup
        built = fresh_built(ds)
        first = measure(built, wl, replay=True, **KW)
        hits_before = built.traces.hits
        second = measure(built, wl, replay=True, **KW)
        assert_same_measurement(first, second)
        # Every lookup of the second pass came from the store.
        assert built.traces.hits - hits_before == KW["n_lookups"] + KW["warmup"]

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_engines_agree_under_replay(self, setup, engine):
        ds, wl = setup
        direct = measure(fresh_built(ds), wl, engine="reference", **KW)
        m = measure(fresh_built(ds), wl, engine=engine, replay=True, **KW)
        assert_same_measurement(direct, m)

    def test_cold_cache_replay_matches(self, setup):
        """fig14-style: flush before every measured lookup, replay on."""
        ds, wl = setup
        direct = measure(fresh_built(ds), wl, warm=False, **KW)
        replayed = measure(fresh_built(ds), wl, warm=False, replay=True, **KW)
        assert_same_measurement(direct, replayed)

    def test_budget_exhaustion_falls_back_to_execution(self, setup):
        ds, wl = setup
        built = fresh_built(ds)
        built.traces = TraceStore(max_events=200)  # a handful of lookups
        m = measure(built, wl, replay=True, **KW)
        assert built.traces.events <= 200
        direct = measure(fresh_built(ds), wl, **KW)
        assert_same_measurement(direct, m)

    def test_mutating_lookups_disable_trace_reuse(self, setup):
        ds, wl = setup
        built = fresh_built(ds)
        built.index.mutating_lookups = True
        m = measure(built, wl, replay=True, **KW)
        assert built.traces is None
        assert_same_measurement(measure(fresh_built(ds), wl, **KW), m)


class TestMeasureRepeatedReplay:
    def test_replay_default_equals_replay_off(self, setup):
        ds, wl = setup
        kw = dict(n_chunks=3, chunk_lookups=120, warmup=60)
        on = measure_repeated(fresh_built(ds), wl, **kw)
        off = measure_repeated(fresh_built(ds), wl, replay=False, **kw)
        assert on.chunk_latencies_ns == off.chunk_latencies_ns
        assert_same_measurement(on.measurement, off.measurement)

    def test_chunks_share_one_trace_store(self, setup):
        ds, wl = setup
        built = fresh_built(ds)
        measure_repeated(built, wl, n_chunks=3, chunk_lookups=120, warmup=60)
        assert built.traces is not None
        # Chunk i re-runs chunks 0..i-1 as warmup: most lookups replay.
        assert built.traces.hits > built.traces.misses
