"""Unit tests for serving telemetry: windows, burn rate, traces, spans.

The cross-engine and serial-vs-jobs byte-identity guarantees live in
``tests/test_telemetry_differential.py``; this file pins the module's
local contracts: config validation, totals telescoping, JSON round
trips, windowed percentiles against a manual recompute, the SRE
burn-rate arithmetic, span rendering, the publish buffer, and the
``serve.latency.p95_ns`` gauge regression.
"""

import json

import pytest

from repro.bench.stats import percentiles
from repro.memsim.counters import PerfCountersF
from repro.obs.metrics import MetricsRegistry
from repro.serve.arrivals import poisson_arrivals
from repro.serve.core import ServiceModel, simulate_open_loop
from repro.serve.metrics import summarize_result
from repro.serve.telemetry import (
    AttemptTrace,
    TelemetryConfig,
    TimeSeries,
    WindowStats,
    burn_rate_report,
    clear_published,
    drain_published,
    publish,
    spans_from_traces,
)


def counters(instructions=50, llc_misses=3.0):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=1.0,
        llc_misses=llc_misses,
        l1_hits=4.0,
    )


def run_open_loop(n=400, rate=2e6, seed=3, n_cores=2, **tel_kwargs):
    service = ServiceModel(counters())
    arrivals = poisson_arrivals(rate, n, seed)
    span_ns = n / rate * 1e9
    cfg = TelemetryConfig(window_ns=span_ns / 8.0, **tel_kwargs)
    return simulate_open_loop(service, arrivals, n_cores, telemetry=cfg)


class TestTelemetryConfig:
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_nonpositive_window(self, bad):
        with pytest.raises(ValueError, match="window_ns"):
            TelemetryConfig(window_ns=bad)

    def test_off_by_default(self):
        service = ServiceModel(counters())
        result = simulate_open_loop(
            service, poisson_arrivals(2e6, 100, 0), 2
        )
        assert result.telemetry is None
        assert result.traces is None

    def test_traces_opt_in(self):
        assert run_open_loop().traces is None
        traced = run_open_loop(traces=True)
        assert traced.traces is not None
        assert len(traced.traces) == len(traced.requests)


class TestTimeSeries:
    def test_totals_telescope_to_the_run(self):
        result = run_open_loop()
        ts = result.telemetry
        assert ts.completed == len(result.requests)
        assert ts.failed == 0 and ts.shed == 0
        assert ts.max_queue_depth == result.max_queue_depth
        assert len(ts.windows) >= 8
        assert ts.windows == tuple(sorted(ts.windows, key=lambda w: w.index))

    def test_window_geometry(self):
        ts = run_open_loop().telemetry
        assert ts.window_start_ns(3) == 3 * ts.window_ns
        assert ts.span_ns == len(ts.windows) * ts.window_ns
        # Dense indexing: windows cover 0..n-1 with no holes.
        assert [w.index for w in ts.windows] == list(range(len(ts.windows)))

    def test_json_round_trip_is_lossless(self):
        ts = run_open_loop().telemetry
        clone = TimeSeries.from_json(ts.to_json())
        assert clone == ts
        assert clone.content_key() == ts.content_key()

    def test_content_key_is_stable_and_discriminating(self):
        a = run_open_loop().telemetry
        b = run_open_loop().telemetry
        assert a.content_key() == b.content_key()
        assert len(a.content_key()) == 40
        c = run_open_loop(seed=4).telemetry
        assert c.content_key() != a.content_key()

    def test_windowed_percentiles_match_manual_recompute(self):
        result = run_open_loop(traces=True)
        ts = result.telemetry
        by_window = {}
        for t in result.traces:
            idx = int(t.finish_ns / ts.window_ns)
            by_window.setdefault(idx, []).append(t.finish_ns - t.dispatch_ns)
        for w in ts.windows:
            lats = by_window.get(w.index)
            if lats is None:
                assert w.completed == 0
                assert w.p50_ns is None and w.p99_ns is None
                continue
            assert w.completed == len(lats)
            ps = percentiles(lats, (50.0, 99.0))
            assert w.p50_ns == ps[50.0] and w.p99_ns == ps[99.0]

    def test_slo_violations_counted(self):
        plain = run_open_loop()
        s = summarize_result(plain)
        tight = run_open_loop(slo_p99_ns=s.p50_ns)
        loose = run_open_loop(slo_p99_ns=10.0 * s.p999_ns)
        assert loose.telemetry.violations == 0
        # Roughly half the requests sit above the median.
        assert tight.telemetry.violations >= len(plain.requests) // 4

    def test_shard_availability(self):
        w = WindowStats(
            index=0, completed=3, failed=1,
            shard_completed=(3, 0), shard_failed=(1, 0),
        )
        assert w.shard_availability == (0.75, 1.0)


def series_from_bad_counts(bad_counts, count=100):
    """A synthetic series with ``count`` completions per window."""
    windows = tuple(
        WindowStats(
            index=i,
            completed=count,
            violations=bad,
            shard_completed=(count,),
            shard_failed=(0,),
        )
        for i, bad in enumerate(bad_counts)
    )
    return TimeSeries(window_ns=1e6, n_shards=1, windows=windows)


class TestBurnRate:
    @pytest.mark.parametrize("bad", [0.0, -0.2, 1.5])
    def test_rejects_bad_budget_fraction(self, bad):
        with pytest.raises(ValueError, match="budget_fraction"):
            burn_rate_report(series_from_bad_counts([0]), bad)

    def test_no_violations_no_burn(self):
        r = burn_rate_report(series_from_bad_counts([0, 0, 0]), 0.01)
        assert r.total == 300 and r.total_bad == 0
        assert r.consumed == 0.0
        assert r.exhausted_window is None
        assert r.time_to_exhaustion_ns is None
        assert all(w.burn_rate == 0.0 for w in r.windows)
        assert all(w.budget_left == 1.0 for w in r.windows)

    def test_burn_arithmetic(self):
        # Budget = 1% of 400 = 4 bad requests; window 1 burns 2 of them
        # (bad fraction 0.02 over budget fraction 0.01 = burn 2x).
        r = burn_rate_report(series_from_bad_counts([0, 2, 0, 6]), 0.01)
        assert r.total == 400 and r.total_bad == 8
        assert r.windows[1].burn_rate == pytest.approx(2.0)
        assert r.windows[1].budget_left == pytest.approx(0.5)
        assert r.windows[3].burn_rate == pytest.approx(6.0)
        assert r.windows[3].budget_left == pytest.approx(-1.0)
        assert r.exhausted_window == 3
        assert r.consumed == pytest.approx(2.0)
        # Burning at 2x the budget exhausts in half the span.
        assert r.time_to_exhaustion_ns == pytest.approx(
            series_from_bad_counts([0] * 4).span_ns / 2.0
        )

    def test_per_class_accounting(self):
        w = WindowStats(
            index=0,
            completed=20,
            violations=7,
            shard_completed=(20,),
            shard_failed=(0,),
            class_stats=(
                ("bronze", 10, 6, 5, 0),
                ("gold", 10, 1, 0, 0),
            ),
        )
        ts = TimeSeries(window_ns=1e6, n_shards=1, windows=(w,))
        gold = burn_rate_report(ts, 0.5, slo_class="gold")
        assert gold.total == 10 and gold.total_bad == 1
        bronze = burn_rate_report(ts, 0.5, slo_class="bronze")
        assert bronze.total == 10 and bronze.total_bad == 6
        shed = burn_rate_report(
            ts, 0.5, slo_class="bronze", include_shed=True
        )
        assert shed.total == 15 and shed.total_bad == 11
        missing = burn_rate_report(ts, 0.5, slo_class="iron")
        assert missing.total == 0 and missing.consumed == 0.0


class TestSpans:
    def test_open_loop_traces_render_as_request_spans(self):
        result = run_open_loop(n=50, traces=True)
        spans = spans_from_traces(result.traces, label="t")
        parents = [s for s in spans if s["name"] == "request"]
        children = [s for s in spans if s["name"] == "attempt"]
        assert len(parents) == 50 and len(children) == 50
        assert all(s["status"] == "ok" for s in spans)
        by_sid = {s["sid"]: s for s in spans}
        for child in children:
            parent = by_sid[child["parent"]]
            assert parent["path"] == "request"
            assert child["path"] == "request/attempt"
            assert child["start_ns"] >= parent["start_ns"]

    def test_failed_attempts_are_error_spans(self):
        traces = (
            AttemptTrace(
                rid=0, attempt=1, shard=0, replica=0, core=0,
                cause="arrival", dispatch_ns=0.0, start_ns=1.0,
                finish_ns=5.0, status="cancelled",
            ),
            AttemptTrace(
                rid=0, attempt=2, shard=0, replica=1, core=0,
                cause="retry", dispatch_ns=5.0, start_ns=6.0,
                finish_ns=9.0, status="completed",
            ),
        )
        spans = spans_from_traces(traces)
        parent = next(s for s in spans if s["name"] == "request")
        assert parent["status"] == "ok"  # the retry completed
        statuses = [
            s["status"] for s in spans if s["name"] == "attempt"
        ]
        assert statuses == ["error", "ok"]

    def test_attempt_trace_dict_round_trip(self):
        t = AttemptTrace(
            rid=7, attempt=2, shard=1, replica=0, core=3,
            cause="hedge", dispatch_ns=10.0, start_ns=11.5,
            finish_ns=20.25, status="completed",
        )
        assert AttemptTrace.from_dict(t.to_dict()) == t
        json.dumps(t.to_dict())  # JSON-able as written


class TestPublishBuffer:
    @pytest.fixture(autouse=True)
    def _clean(self):
        clear_published()
        yield
        clear_published()

    def test_publish_and_drain(self):
        result = run_open_loop(n=30, traces=True)
        publish("a/b", result.telemetry, traces=result.traces)
        records, spans = drain_published()
        assert [r["label"] for r in records] == ["a/b"]
        assert records[0]["content_key"] == result.telemetry.content_key()
        assert (
            TimeSeries.from_dict(records[0]["series"]) == result.telemetry
        )
        assert spans and all(s["attrs"]["label"] == "a/b" for s in spans)
        # Drain empties the buffers.
        assert drain_published() == ([], [])


class TestP95Gauge:
    def test_to_metrics_publishes_p95(self):
        summary = summarize_result(run_open_loop())
        reg = MetricsRegistry()
        summary.to_metrics(registry=reg)
        names = reg.names()
        assert "serve.latency.p95_ns" in names
        snap = reg.snapshot()
        assert snap["gauges"]["serve.latency.p95_ns"] == summary.p95_ns
        # The neighbours it was missing between.
        assert "serve.latency.p50_ns" in names
        assert "serve.latency.p99_ns" in names


class TestTopologyGauges:
    """``ClusterResult.to_metrics`` exports the autoscaler's inputs and
    outputs: shard/replica-count gauges plus an epoch counter."""

    def run_cluster(self, reconfig=None):
        from repro.serve.cluster import Cluster, simulate_cluster
        from repro.serve.router import RouterPolicy, ShardMap

        cluster = Cluster(
            shard_map=ShardMap([0, 1000]),
            services=[ServiceModel(counters()) for _ in range(2)],
            n_replicas=2,
            n_cores=2,
            policy=RouterPolicy(),
            faults=None,
            reconfig=reconfig,
        )
        arrivals = poisson_arrivals(2e6, 200, 3)
        keys = [(i * 13) % 2000 for i in range(200)]
        return simulate_cluster(cluster, arrivals, keys)

    def test_static_run_exports_topology(self):
        result = self.run_cluster()
        reg = MetricsRegistry()
        result.to_metrics(registry=reg)
        names = reg.names()
        assert "serve.cluster.shards" in names
        assert "serve.cluster.replicas" in names
        snap = reg.snapshot()
        assert snap["gauges"]["serve.cluster.shards"] == 2.0
        assert snap["gauges"]["serve.cluster.replicas"] == 4.0
        assert snap["counters"]["serve.cluster.epochs"] == 1

    def test_reconfigured_run_exports_final_topology(self):
        from repro.serve.reconfig import ReconfigSpec, SplitSpec

        span_ns = 200 / 2e6 * 1e9
        result = self.run_cluster(
            ReconfigSpec(
                splits=(
                    SplitSpec(at_ns=0.3 * span_ns, shard=0, at_key=500),
                )
            )
        )
        reg = MetricsRegistry()
        result.to_metrics(registry=reg)
        snap = reg.snapshot()
        assert snap["gauges"]["serve.cluster.shards"] == 3.0
        assert snap["gauges"]["serve.cluster.replicas"] == 6.0
        assert snap["counters"]["serve.cluster.epochs"] == 2
