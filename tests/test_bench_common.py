"""Experiment-driver plumbing: sweeps, caches, selection helpers."""

import pytest

from repro.bench.config import BenchSettings
from repro.bench.experiments import common


@pytest.fixture()
def tiny_settings():
    return BenchSettings(n_keys=2_500, n_lookups=40, warmup=20, max_configs=2)


class TestSelectionHelpers:
    def _measurements(self, tiny_settings):
        ds, wl = common.dataset_and_workload("amzn", tiny_settings)
        return common.sweep(ds, wl, "PGM", tiny_settings)

    def test_fastest_picks_min_latency(self, tiny_settings):
        ms = self._measurements(tiny_settings)
        assert common.fastest(ms).latency_ns == min(m.latency_ns for m in ms)

    def test_closest_to_size(self, tiny_settings):
        ms = self._measurements(tiny_settings)
        target = ms[0].size_bytes
        assert common.closest_to_size(ms, target) is ms[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            common.fastest([])
        with pytest.raises(ValueError):
            common.closest_to_size([], 100)


class TestMemoization:
    def test_cached_measure_reuses(self, tiny_settings):
        ds, wl = common.dataset_and_workload("amzn", tiny_settings)
        a = common.cached_measure(ds, wl, "BS", {}, tiny_settings)
        b = common.cached_measure(ds, wl, "BS", {}, tiny_settings)
        assert a is b

    def test_different_search_not_conflated(self, tiny_settings):
        ds, wl = common.dataset_and_workload("amzn", tiny_settings)
        a = common.cached_measure(ds, wl, "BS", {}, tiny_settings, search="binary")
        b = common.cached_measure(
            ds, wl, "BS", {}, tiny_settings, search="interpolation"
        )
        assert a is not b

    def test_clear_caches(self, tiny_settings):
        ds, wl = common.dataset_and_workload("amzn", tiny_settings)
        a = common.cached_measure(ds, wl, "BS", {}, tiny_settings)
        common.clear_caches()
        b = common.cached_measure(ds, wl, "BS", {}, tiny_settings)
        assert a is not b

    def test_workload_covers_warmup(self, tiny_settings):
        ds, wl = common.dataset_and_workload("amzn", tiny_settings)
        assert wl.n >= tiny_settings.n_lookups + tiny_settings.warmup


class TestSweep:
    def test_sweep_respects_max_configs(self, tiny_settings):
        ds, wl = common.dataset_and_workload("amzn", tiny_settings)
        ms = common.sweep(ds, wl, "RMI", tiny_settings)
        assert len(ms) <= tiny_settings.max_configs

    def test_sweep_override(self, tiny_settings):
        ds, wl = common.dataset_and_workload("amzn", tiny_settings)
        ms = common.sweep(ds, wl, "RMI", tiny_settings, max_configs=1)
        assert len(ms) == 1
