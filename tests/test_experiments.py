"""Every experiment driver runs end-to-end on tiny settings."""

import pytest

from repro.bench.config import BenchSettings
from repro.bench.experiments import EXPERIMENTS


@pytest.fixture(scope="module")
def tiny():
    return BenchSettings(
        n_keys=3_000,
        n_lookups=60,
        warmup=30,
        max_configs=2,
        datasets=["amzn", "osm"],
    )


ALL_IDS = sorted(EXPERIMENTS)


def test_cli_lists_all_paper_artifacts():
    paper_artifacts = {
        "table1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "sec4.3",
    }
    assert paper_artifacts <= set(EXPERIMENTS)
    extras = set(EXPERIMENTS) - paper_artifacts
    # extension experiments are explicit
    assert extras == {
        "ext1", "ext2", "ext3", "ext_serving", "ext_cluster", "ext_tenants",
        "ext_reconfig",
    }


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_experiment_produces_report(tiny, exp_id):
    report = EXPERIMENTS[exp_id](tiny)
    assert isinstance(report, str)
    assert len(report) > 50


class TestReportContents:
    def test_table1_has_all_methods(self, tiny):
        report = EXPERIMENTS["table1"](tiny)
        for name in ("PGM", "RMI", "Wormhole", "CuckooMap", "BS"):
            assert name in report

    def test_fig7_marks_pareto(self, tiny):
        report = EXPERIMENTS["fig7"](tiny)
        assert "pareto" in report
        assert "binary search baseline" in report

    def test_table2_contains_hashes(self, tiny):
        report = EXPERIMENTS["table2"](tiny)
        assert "RobinHash" in report
        assert "CuckooMap" in report

    def test_regression_reports_r2(self, tiny):
        report = EXPERIMENTS["sec4.3"](tiny)
        assert "R^2" in report
        assert "cache_misses" in report

    def test_fig16_reports_speedup(self, tiny):
        report = EXPERIMENTS["fig16"](tiny)
        assert "speedup" in report
        assert "RobinHash" in report

    def test_fig15_reports_slowdown(self, tiny):
        report = EXPERIMENTS["fig15"](tiny)
        assert "slowdown" in report


class TestCli:
    def test_main_runs_single_experiment(self, capsys):
        from repro.bench.__main__ import main

        rc = main(["--experiment", "table1", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_main_rejects_unknown(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--experiment", "fig99"]) == 2

    def test_settings_overrides(self):
        from repro.bench.__main__ import build_parser, settings_from_args

        args = build_parser().parse_args(
            ["--quick", "--n-keys", "1234", "--datasets", "osm"]
        )
        s = settings_from_args(args)
        assert s.n_keys == 1234
        assert s.datasets == ["osm"]
        assert s.max_configs == 4  # from quick preset
