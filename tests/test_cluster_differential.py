"""Differential tests: cluster vs single-node simulator, and the
``ext_cluster`` report across execution strategies.

The tentpole invariant: a 1-shard, 1-replica, fault-free cluster under
the default router policy IS the single-node simulator -- same events,
same sequence numbers, same float arithmetic -- so every per-request
number must be *byte-identical* (exact ``==`` on floats, no approx).

The report half mirrors ``test_serving_determinism.py``: the
``ext_cluster`` report must be identical whether its per-shard
measurement grid was computed serially, on a 2-process pool, or replayed
from the persistent cache.

Every byte-identity class runs under both serving engines (``event``
and ``fast``, via the ``engine`` fixture), and
``TestCrossEngineByteIdentity`` compares the engines against *each
other* on degenerate, faulted, and hedged runs.
"""

from __future__ import annotations

import pytest

from repro.bench.cache import MeasurementCache
from repro.bench.config import BenchSettings
from repro.bench.experiments import common, ext_cluster
from repro.bench.parallel import run_cells
from repro.memsim.counters import PerfCountersF
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.core import ServiceModel, simulate_open_loop
from repro.serve.arrivals import poisson_arrivals
from repro.serve.faults import FaultConfig
from repro.serve.fastsim import SERVE_ENGINE_NAMES
from repro.serve.metrics import summarize, summarize_result
from repro.serve.router import RouterPolicy, ShardMap


@pytest.fixture(params=SERVE_ENGINE_NAMES)
def engine(request, monkeypatch):
    """Run the test under each serving engine's ambient default."""
    monkeypatch.setenv("REPRO_SERVE_ENGINE", request.param)
    return request.param


def counters(instructions=50, llc_misses=3.0, branch_misses=1.0):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=branch_misses,
        llc_misses=llc_misses,
        l1_hits=4.0,
    )


def degenerate_pair(arrivals, n_cores):
    """(single-node result, degenerate-cluster result) on fresh models."""
    single = simulate_open_loop(
        ServiceModel(counters()), arrivals, n_cores=n_cores
    )
    cluster = Cluster(
        shard_map=ShardMap([0]),
        services=[ServiceModel(counters())],
        n_replicas=1,
        n_cores=n_cores,
        policy=RouterPolicy(),
        faults=None,
    )
    clustered = simulate_cluster(cluster, arrivals, [50] * len(arrivals))
    return single, clustered


class TestDegenerateByteIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    @pytest.mark.parametrize("n_cores", [1, 3])
    def test_request_stream_identical(self, seed, n_cores, engine):
        arrivals = poisson_arrivals(6e6, 400, seed=seed)
        single, clustered = degenerate_pair(arrivals, n_cores)
        assert len(clustered.records) == len(single.requests)
        for s, c in zip(single.requests, clustered.records):
            # Exact equality on every float: the cluster must push the
            # same events through the same loop code.
            assert (s.rid, s.arrival_ns, s.start_ns, s.finish_ns, s.core) == (
                c.rid,
                c.arrival_ns,
                c.start_ns,
                c.finish_ns,
                c.core,
            )
            assert c.completed and not c.failed
            assert c.attempts == 1 and c.retries == 0 and not c.hedged

    def test_aggregates_identical(self, engine):
        arrivals = poisson_arrivals(6e6, 500, seed=3)
        single, clustered = degenerate_pair(arrivals, 2)
        assert clustered.makespan_ns == single.makespan_ns
        assert clustered.max_queue_depth == single.max_queue_depth
        assert clustered.latencies_ns == single.latencies_ns
        assert clustered.throughput_per_sec == single.throughput_per_sec

    def test_latency_summary_identical(self, engine):
        arrivals = poisson_arrivals(6e6, 500, seed=5)
        single, clustered = degenerate_pair(arrivals, 2)
        assert clustered.summary() == summarize_result(single)
        assert clustered.summary() == summarize(
            single.latencies_ns, single.throughput_per_sec
        )

    def test_identity_breaks_with_faults(self, engine):
        """Sanity: the identity is a property of the degenerate config,
        not an artifact of the comparison."""
        arrivals = poisson_arrivals(6e6, 400, seed=0)
        single = simulate_open_loop(
            ServiceModel(counters()), arrivals, n_cores=2
        )
        cluster = Cluster(
            shard_map=ShardMap([0]),
            services=[ServiceModel(counters())],
            n_replicas=1,
            n_cores=2,
            faults=FaultConfig(crash_mttf_ns=2e4, crash_mttr_ns=2e4, seed=0),
        )
        clustered = simulate_cluster(cluster, arrivals, [50] * 400)
        assert clustered.latencies_ns != single.latencies_ns


def record_tuple(r):
    return (
        r.rid,
        r.key,
        r.shard,
        r.arrival_ns,
        r.attempts,
        r.retries,
        r.hedged,
        r.completed,
        r.failed,
        r.start_ns,
        r.finish_ns,
        r.replica,
        r.core,
    )


class TestCrossEngineByteIdentity:
    """The two engines must agree with each other, not just with the
    single-node simulator -- including on runs where the kernel falls
    back to the event loop (faults, hedging, retries)."""

    def both(self, build):
        return build(engine="event"), build(engine="fast")

    @pytest.mark.parametrize("seed", [0, 11])
    def test_degenerate_cluster(self, seed):
        arrivals = poisson_arrivals(6e6, 400, seed=seed)

        def build(engine):
            cluster = Cluster(
                shard_map=ShardMap([0]),
                services=[ServiceModel(counters())],
                n_replicas=1,
                n_cores=2,
            )
            return simulate_cluster(
                cluster, arrivals, [50] * 400, engine=engine
            )

        a, b = self.both(build)
        assert [record_tuple(r) for r in a.records] == [
            record_tuple(r) for r in b.records
        ]
        assert a.summary() == b.summary()

    def test_faulted_hedged_cluster(self):
        arrivals = poisson_arrivals(4e6, 500, seed=2)
        keys = [(37 * i) % 100 for i in range(500)]
        span = 500 / 4e6 * 1e9

        def build(engine):
            cluster = Cluster(
                shard_map=ShardMap([0, 50]),
                services=[
                    ServiceModel(counters()),
                    ServiceModel(counters(80)),
                ],
                n_replicas=2,
                n_cores=2,
                policy=RouterPolicy(
                    hedge_after_ns=span / 100.0,
                    backoff_base_ns=span / 50.0,
                    backoff_cap_ns=span / 5.0,
                ),
                faults=FaultConfig(
                    crash_mttf_ns=span / 2.0,
                    crash_mttr_ns=span / 10.0,
                    slow_mttf_ns=span / 2.0,
                    slow_mttr_ns=span / 8.0,
                    slow_factor=6.0,
                    seed=5,
                ),
            )
            return simulate_cluster(
                cluster, arrivals, keys, fault_horizon_ns=1.5 * span,
                engine=engine,
            )

        a, b = self.both(build)
        assert a.crashes > 0 or a.slow_events > 0
        assert [record_tuple(r) for r in a.records] == [
            record_tuple(r) for r in b.records
        ]
        assert (a.crashes, a.slow_events, a.total_retries, a.total_hedges) == (
            b.crashes,
            b.slow_events,
            b.total_retries,
            b.total_hedges,
        )
        assert a.fault_events == b.fault_events
        assert a.summary() == b.summary()


@pytest.fixture(autouse=True)
def _isolate_measurement_caches():
    common.set_active_cache(None)
    common.clear_caches()
    yield
    common.set_active_cache(None)
    common.clear_caches()


@pytest.fixture(scope="module")
def settings():
    return BenchSettings(
        n_keys=6_000, n_lookups=40, warmup=20, max_configs=2
    )


def fresh_report(settings, jobs: int, cache=None):
    """Recompute the per-shard grid at ``jobs`` workers, then format."""
    common.clear_caches()
    cells = ext_cluster.cells(settings)
    assert cells
    _, stats = run_cells(cells, jobs=jobs, cache=cache)
    return ext_cluster.run(settings), stats


@pytest.mark.slow
class TestReportDeterminism:
    def test_serial_equals_jobs2(self, settings):
        serial, serial_stats = fresh_report(settings, jobs=1)
        parallel, parallel_stats = fresh_report(settings, jobs=2)
        assert serial_stats.executed > 0
        assert parallel_stats.executed == serial_stats.executed
        assert serial == parallel

    def test_cache_replay_is_identical(self, settings, tmp_path):
        cache = MeasurementCache(str(tmp_path / "cache"))
        first, first_stats = fresh_report(settings, jobs=2, cache=cache)
        assert first_stats.executed > 0
        second, second_stats = fresh_report(settings, jobs=1, cache=cache)
        assert second_stats.executed == 0
        assert second_stats.cache_hits == second_stats.unique_cells
        assert first == second

    def test_report_structure(self, settings):
        report, _ = fresh_report(settings, jobs=1)
        for ds_name in ("amzn", "osm"):
            assert f"tail latency under faults, {ds_name}" in report
            assert f"request hedging under rare gray failure, {ds_name}" in (
                report
            )
            assert f"cluster SLO selection, {ds_name}" in report
        for index_name in ("RMI", "PGM", "BTree"):
            assert index_name in report
        assert "-> chosen:" in report
        assert "avail" in report

    def test_report_identical_across_engines(self, settings, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "event")
        event_report, _ = fresh_report(settings, jobs=1)
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "fast")
        fast_report, _ = fresh_report(settings, jobs=1)
        assert event_report == fast_report
