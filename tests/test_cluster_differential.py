"""Differential tests: cluster vs single-node simulator, and the
``ext_cluster`` report across execution strategies.

The tentpole invariant: a 1-shard, 1-replica, fault-free cluster under
the default router policy IS the single-node simulator -- same events,
same sequence numbers, same float arithmetic -- so every per-request
number must be *byte-identical* (exact ``==`` on floats, no approx).

The report half mirrors ``test_serving_determinism.py``: the
``ext_cluster`` report must be identical whether its per-shard
measurement grid was computed serially, on a 2-process pool, or replayed
from the persistent cache.
"""

from __future__ import annotations

import pytest

from repro.bench.cache import MeasurementCache
from repro.bench.config import BenchSettings
from repro.bench.experiments import common, ext_cluster
from repro.bench.parallel import run_cells
from repro.memsim.counters import PerfCountersF
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.core import ServiceModel, simulate_open_loop
from repro.serve.arrivals import poisson_arrivals
from repro.serve.metrics import summarize, summarize_result
from repro.serve.router import RouterPolicy, ShardMap


def counters(instructions=50, llc_misses=3.0, branch_misses=1.0):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=branch_misses,
        llc_misses=llc_misses,
        l1_hits=4.0,
    )


def degenerate_pair(arrivals, n_cores):
    """(single-node result, degenerate-cluster result) on fresh models."""
    single = simulate_open_loop(
        ServiceModel(counters()), arrivals, n_cores=n_cores
    )
    cluster = Cluster(
        shard_map=ShardMap([0]),
        services=[ServiceModel(counters())],
        n_replicas=1,
        n_cores=n_cores,
        policy=RouterPolicy(),
        faults=None,
    )
    clustered = simulate_cluster(cluster, arrivals, [50] * len(arrivals))
    return single, clustered


class TestDegenerateByteIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    @pytest.mark.parametrize("n_cores", [1, 3])
    def test_request_stream_identical(self, seed, n_cores):
        arrivals = poisson_arrivals(6e6, 400, seed=seed)
        single, clustered = degenerate_pair(arrivals, n_cores)
        assert len(clustered.records) == len(single.requests)
        for s, c in zip(single.requests, clustered.records):
            # Exact equality on every float: the cluster must push the
            # same events through the same loop code.
            assert (s.rid, s.arrival_ns, s.start_ns, s.finish_ns, s.core) == (
                c.rid,
                c.arrival_ns,
                c.start_ns,
                c.finish_ns,
                c.core,
            )
            assert c.completed and not c.failed
            assert c.attempts == 1 and c.retries == 0 and not c.hedged

    def test_aggregates_identical(self):
        arrivals = poisson_arrivals(6e6, 500, seed=3)
        single, clustered = degenerate_pair(arrivals, 2)
        assert clustered.makespan_ns == single.makespan_ns
        assert clustered.max_queue_depth == single.max_queue_depth
        assert clustered.latencies_ns == single.latencies_ns
        assert clustered.throughput_per_sec == single.throughput_per_sec

    def test_latency_summary_identical(self):
        arrivals = poisson_arrivals(6e6, 500, seed=5)
        single, clustered = degenerate_pair(arrivals, 2)
        assert clustered.summary() == summarize_result(single)
        assert clustered.summary() == summarize(
            single.latencies_ns, single.throughput_per_sec
        )

    def test_identity_breaks_with_faults(self):
        """Sanity: the identity is a property of the degenerate config,
        not an artifact of the comparison."""
        from repro.serve.faults import FaultConfig

        arrivals = poisson_arrivals(6e6, 400, seed=0)
        single = simulate_open_loop(
            ServiceModel(counters()), arrivals, n_cores=2
        )
        cluster = Cluster(
            shard_map=ShardMap([0]),
            services=[ServiceModel(counters())],
            n_replicas=1,
            n_cores=2,
            faults=FaultConfig(crash_mttf_ns=2e4, crash_mttr_ns=2e4, seed=0),
        )
        clustered = simulate_cluster(cluster, arrivals, [50] * 400)
        assert clustered.latencies_ns != single.latencies_ns


@pytest.fixture(autouse=True)
def _isolate_measurement_caches():
    common.set_active_cache(None)
    common.clear_caches()
    yield
    common.set_active_cache(None)
    common.clear_caches()


@pytest.fixture(scope="module")
def settings():
    return BenchSettings(
        n_keys=6_000, n_lookups=40, warmup=20, max_configs=2
    )


def fresh_report(settings, jobs: int, cache=None):
    """Recompute the per-shard grid at ``jobs`` workers, then format."""
    common.clear_caches()
    cells = ext_cluster.cells(settings)
    assert cells
    _, stats = run_cells(cells, jobs=jobs, cache=cache)
    return ext_cluster.run(settings), stats


@pytest.mark.slow
class TestReportDeterminism:
    def test_serial_equals_jobs2(self, settings):
        serial, serial_stats = fresh_report(settings, jobs=1)
        parallel, parallel_stats = fresh_report(settings, jobs=2)
        assert serial_stats.executed > 0
        assert parallel_stats.executed == serial_stats.executed
        assert serial == parallel

    def test_cache_replay_is_identical(self, settings, tmp_path):
        cache = MeasurementCache(str(tmp_path / "cache"))
        first, first_stats = fresh_report(settings, jobs=2, cache=cache)
        assert first_stats.executed > 0
        second, second_stats = fresh_report(settings, jobs=1, cache=cache)
        assert second_stats.executed == 0
        assert second_stats.cache_hits == second_stats.unique_cells
        assert first == second

    def test_report_structure(self, settings):
        report, _ = fresh_report(settings, jobs=1)
        for ds_name in ("amzn", "osm"):
            assert f"tail latency under faults, {ds_name}" in report
            assert f"request hedging under rare gray failure, {ds_name}" in (
                report
            )
            assert f"cluster SLO selection, {ds_name}" in report
        for index_name in ("RMI", "PGM", "BTree"):
            assert index_name in report
        assert "-> chosen:" in report
        assert "avail" in report
