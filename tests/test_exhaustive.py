"""Brute-force exhaustive validity on small universes.

For a small key universe we can check every possible lookup key against
every ordered index -- no sampling, no property shrinkage, just the whole
space.  This pins the exact semantics of bounds at all boundary
conditions (before the first key, between every adjacent pair, on every
key, after the last key).
"""

import bisect

import numpy as np
import pytest

from repro.core.registry import make_index

CONFIGS = [
    ("RMI", {"branching": 8}),
    ("RMI3", {"branching": 8, "mid_branching": 4}),
    ("PGM", {"epsilon": 2}),
    ("FITing", {"epsilon": 2}),
    ("RS", {"epsilon": 2, "radix_bits": 4}),
    ("RBS", {"radix_bits": 4}),
    ("BTree", {"gap": 2}),
    ("IBTree", {"gap": 2}),
    ("FAST", {"gap": 2}),
    ("ART", {"gap": 2}),
    ("FST", {"gap": 2}),
    ("Wormhole", {"gap": 2, "leaf_size": 4}),
    ("BS", {}),
]

UNIVERSES = [
    list(range(10, 74, 4)),                      # evenly spaced
    [1, 2, 3, 5, 8, 13, 21, 34, 55, 89],          # fibonacci-ish
    [0, 1, 62, 63],                               # extremes of the universe
    [7],                                          # singleton
    [0, 50],                                      # pair
    list(range(30)) + [60, 61, 62],               # dense run + cluster
]


@pytest.mark.parametrize("index_name,config", CONFIGS)
@pytest.mark.parametrize("universe_id", range(len(UNIVERSES)))
def test_every_possible_key(index_name, config, universe_id):
    keys = UNIVERSES[universe_id]
    idx = make_index(index_name, **config).build(
        np.array(keys, dtype=np.uint64)
    )
    for probe in range(max(keys) + 3):
        bound = idx.lookup(probe)
        true_pos = bisect.bisect_left(keys, probe)
        assert bound.contains(true_pos), (
            f"{index_name} universe {universe_id}: probe {probe} -> "
            f"[{bound.lo}, {bound.hi}) misses {true_pos}"
        )


@pytest.mark.parametrize("index_name,config", CONFIGS)
def test_last_mile_recovers_every_key(index_name, config):
    """End-to-end: bound + binary search yields the exact lower bound."""
    from repro.memsim import AddressSpace, TracedArray
    from repro.search.last_mile import SEARCH_FUNCTIONS

    keys = [3, 9, 10, 27, 28, 29, 55, 81]
    space = AddressSpace()
    data = TracedArray.allocate(space, np.array(keys, dtype=np.uint64))
    idx = make_index(index_name, **config).build(data, space)
    for search_fn in SEARCH_FUNCTIONS.values():
        for probe in range(85):
            bound = idx.lookup(probe)
            pos = search_fn(data, probe, bound)
            assert pos == bisect.bisect_left(keys, probe)
