"""Differential tests: reconfiguration's no-op is *exactly* nothing.

Two invariants pin the reconfig layer onto the existing simulators:

* **No-op identity.**  A cluster or scenario run with ``ReconfigSpec()``
  (no triggers) attached is byte-identical to the same run with no spec
  at all -- every per-request float, on sharded, faulted and
  multi-tenant topologies, under both serving engines, and whether the
  scenario fans out serially or on a 2-process pool.  Attaching the
  zero spec must not even construct a runtime.
* **Engine identity under *active* reconfig.**  With splits, rebuilds
  and autoscaling firing mid-run, the ``event`` and ``fast`` engines
  still produce identical records, epoch histories and telemetry
  time-series (``to_dict()`` compared wholesale, the same bar
  ``test_telemetry_differential.py`` sets for faults).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim.counters import PerfCountersF
from repro.serve.arrivals import poisson_arrivals
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.core import ServiceModel
from repro.serve.fastsim import SERVE_ENGINE_NAMES
from repro.serve.faults import FaultConfig
from repro.serve.reconfig import (
    AutoscaleSpec,
    RebuildSpec,
    ReconfigSpec,
    SplitSpec,
)
from repro.serve.router import RouterPolicy, ShardMap, request_keys
from repro.serve.scenario import TopologySpec, single_tenant_spec
from repro.serve.sweep import run_sim_tasks, scenario_task
from repro.serve.telemetry import TelemetryConfig
from repro.serve.tenancy import simulate_scenario

RATE = 3e5
N_REQ = 400
SPAN_NS = N_REQ / RATE * 1e9


@pytest.fixture(params=SERVE_ENGINE_NAMES)
def engine(request, monkeypatch):
    """Run the test under each serving engine's ambient default."""
    monkeypatch.setenv("REPRO_SERVE_ENGINE", request.param)
    return request.param


def counters(instructions=500):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=5.0,
        llc_misses=30.0,
        l1_hits=40.0,
    )


class FakeMeasurement:
    """Duck-typed stand-in for repro.bench.harness.Measurement."""

    def __init__(self):
        self.index = "X"
        self.config = {}
        self.size_bytes = 1 << 20
        self.counters = counters()


@pytest.fixture(scope="module")
def keys():
    raw = np.random.default_rng(0).integers(
        0, 2**40, size=6000, dtype=np.uint64
    )
    return np.unique(raw)


def cluster_run(keys, reconfig, faults=None, seed=5):
    shard_map = ShardMap.from_keys(keys, 3)
    cluster = Cluster(
        shard_map=shard_map,
        services=[ServiceModel(counters()) for _ in range(3)],
        n_replicas=2,
        n_cores=2,
        policy=RouterPolicy(),
        faults=faults,
        reconfig=reconfig,
    )
    return simulate_cluster(
        cluster,
        poisson_arrivals(RATE, N_REQ, seed),
        request_keys(keys, N_REQ, seed),
        fault_horizon_ns=SPAN_NS if faults is not None else None,
        telemetry=TelemetryConfig(window_ns=SPAN_NS / 8),
    )


def record_tuple(r):
    return (
        r.rid,
        r.key,
        r.shard,
        r.arrival_ns,
        r.attempts,
        r.retries,
        r.hedged,
        r.completed,
        r.failed,
        r.start_ns,
        r.finish_ns,
        r.replica,
        r.core,
    )


def assert_records_identical(a_records, b_records):
    assert len(a_records) == len(b_records)
    for a, b in zip(a_records, b_records):
        assert record_tuple(a) == record_tuple(b)


def active_spec_for(keys):
    """A spec exercising all three operations inside the run, its split
    key pinned to the midpoint of shard 0's range."""
    bounds = ShardMap.from_keys(keys, 3).lower_bounds
    at_key = bounds[0] + (bounds[1] - bounds[0]) // 2
    return ReconfigSpec(
        splits=(SplitSpec(at_ns=0.2 * SPAN_NS, shard=0, at_key=at_key),),
        rebuilds=(
            RebuildSpec(
                at_ns=0.45 * SPAN_NS,
                shard=1,
                replica=0,
                build_ns=0.2 * SPAN_NS,
                speedup=1.25,
            ),
        ),
        autoscale=AutoscaleSpec(
            interval_ns=SPAN_NS / 8,
            up_depth=2,
            down_depth=0,
            min_replicas=2,
            max_replicas=4,
        ),
    )


class TestNoOpSpecIsByteIdentical:
    """``ReconfigSpec()`` attached == no spec at all, exactly."""

    def test_sharded_cluster(self, keys, engine):
        base = cluster_run(keys, reconfig=None)
        noop = cluster_run(keys, reconfig=ReconfigSpec())
        assert_records_identical(noop.records, base.records)
        assert noop.makespan_ns == base.makespan_ns
        assert noop.telemetry.to_dict() == base.telemetry.to_dict()
        # The zero spec never constructs reconfig state.
        assert noop.epochs is None and base.epochs is None
        assert noop.epoch_count == 1 and noop.final_shards == 3

    def test_faulted_cluster(self, keys, engine):
        faults = FaultConfig(
            crash_mttf_ns=SPAN_NS / 3,
            crash_mttr_ns=SPAN_NS / 6,
            slow_mttf_ns=SPAN_NS / 2,
            slow_mttr_ns=SPAN_NS / 5,
            seed=9,
        )
        base = cluster_run(keys, reconfig=None, faults=faults)
        noop = cluster_run(keys, reconfig=ReconfigSpec(), faults=faults)
        assert_records_identical(noop.records, base.records)
        assert noop.telemetry.to_dict() == base.telemetry.to_dict()

    def test_tenant_scenario(self, keys, engine):
        spec = single_tenant_spec(
            RATE,
            N_REQ,
            seed=4,
            topology=TopologySpec(n_shards=3, n_replicas=2, n_cores=2),
        )
        services = [ServiceModel(counters()) for _ in range(3)]
        base = simulate_scenario(spec, services, keys)
        noop = simulate_scenario(
            spec.with_reconfig(ReconfigSpec()),
            [ServiceModel(counters()) for _ in range(3)],
            keys,
        )
        assert_records_identical(noop.cluster.records, base.cluster.records)
        for a, b in zip(noop.tenants, base.tenants):
            assert (a.requests, a.completed, a.failed, a.shed) == (
                b.requests,
                b.completed,
                b.failed,
                b.shed,
            )
            assert a.latencies_ns == b.latencies_ns

    def test_serial_vs_jobs(self, engine):
        """The no-op identity holds through the task fan-out layer."""
        spec = single_tenant_spec(
            RATE,
            N_REQ,
            seed=4,
            topology=TopologySpec(n_shards=2, n_replicas=2, n_cores=2),
        )
        tasks = [
            scenario_task(
                s, "amzn", 2000, 0, [FakeMeasurement(), FakeMeasurement()]
            )
            for s in (spec, spec.with_reconfig(ReconfigSpec()))
        ]
        serial = run_sim_tasks(tasks, jobs=1)
        pooled = run_sim_tasks(tasks, jobs=2)
        assert serial[0] == serial[1]  # no-op spec == no spec
        assert serial == pooled  # pool == serial, byte for byte


class TestActiveReconfigEngineIdentity:
    """Split + rebuild + autoscale mid-run: engines stay byte-identical."""

    def run_under(self, keys, engine_name, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_ENGINE", engine_name)
        return cluster_run(keys, reconfig=active_spec_for(keys))

    def test_records_epochs_telemetry_identical(self, keys, monkeypatch):
        results = {
            name: self.run_under(keys, name, monkeypatch)
            for name in SERVE_ENGINE_NAMES
        }
        a, b = (results[n] for n in SERVE_ENGINE_NAMES[:2])
        assert_records_identical(a.records, b.records)
        assert a.epochs == b.epochs
        assert a.rebuilds == b.rebuilds
        assert a.scale_events == b.scale_events
        assert a.live_replicas == b.live_replicas
        # Telemetry series across the active reconfig, wholesale.
        assert a.telemetry.to_dict() == b.telemetry.to_dict()
        # The run actually reconfigured (the test isn't vacuous).
        assert len(a.epochs) == 2 and a.final_shards == 4
        assert len(a.rebuilds) == 1

    def test_scenario_active_reconfig_engines_identical(
        self, keys, monkeypatch
    ):
        spec = single_tenant_spec(
            RATE,
            N_REQ,
            seed=4,
            topology=TopologySpec(n_shards=3, n_replicas=2, n_cores=2),
        ).with_reconfig(active_spec_for(keys))
        dicts = []
        for name in SERVE_ENGINE_NAMES:
            monkeypatch.setenv("REPRO_SERVE_ENGINE", name)
            r = simulate_scenario(
                spec,
                [ServiceModel(counters()) for _ in range(3)],
                keys,
                telemetry=TelemetryConfig(window_ns=SPAN_NS / 8),
            )
            dicts.append(
                (
                    [record_tuple(x) for x in r.cluster.records],
                    r.cluster.telemetry.to_dict(),
                    r.cluster.epochs,
                )
            )
        assert dicts[0] == dicts[1]
