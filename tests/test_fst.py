"""Fast succinct trie."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.traditional.fst import FSTIndex
from repro.memsim import PerfTracer

from conftest import build


class TestFSTValidity:
    @pytest.mark.parametrize("gap", [1, 4, 32])
    def test_valid_on_all_datasets(self, all_datasets_small, gap):
        for name, ds in all_datasets_small.items():
            idx = build("FST", ds, gap=gap)
            probes = list(ds.keys[::39]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, name

    def test_valid_on_absent_keys(self, amzn_small, amzn_workload):
        idx = build("FST", amzn_small, gap=2)
        assert validate_index(idx, amzn_workload.keys_py) is None

    def test_extreme_probes(self, amzn_small, extreme_probe_keys):
        idx = build("FST", amzn_small, gap=2)
        assert validate_index(idx, extreme_probe_keys) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=150, unique=True),
        st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_validity_property(self, keys, probe):
        keys.sort()
        idx = FSTIndex(gap=1).build(np.array(keys, dtype=np.uint64))
        assert validate_index(idx, [probe]) is None


class TestFSTStructure:
    def test_louds_invariants(self, amzn_small):
        idx = build("FST", amzn_small, gap=8)
        # Every node starts with a louds-1; edge arrays aligned.
        assert idx._louds[0] == 1
        assert len(idx._labels) == len(idx._has_child) == len(idx._louds)
        # Number of leaf edges equals number of sampled keys.
        n_leaves = sum(1 for hc in idx._has_child if hc == 0)
        assert n_leaves == idx._n_samples

    def test_leaf_values_are_key_order(self, amzn_small):
        idx = build("FST", amzn_small, gap=8)
        # Values may appear in BFS order, but each leaf stores its exact
        # sampled index; check via its stored key.
        samples = amzn_small.keys[::8]
        for vidx in range(0, len(idx._values), 50):
            j = idx._values[vidx]
            assert int(samples[j]) == idx._leaf_keys[vidx]

    def test_labels_sorted_within_node(self, amzn_small):
        idx = build("FST", amzn_small, gap=8)
        for lo, hi in idx._node_range[:200]:
            labels = idx._labels[lo:hi]
            assert labels == sorted(labels)

    def test_heavy_read_profile(self, amzn_small):
        """The paper's Figure 8 mechanism: many per-byte operations."""
        fst = build("FST", amzn_small, gap=1)
        t = PerfTracer()
        for key in amzn_small.keys[::61]:
            fst.lookup(int(key), t)
        n = len(amzn_small.keys[::61])
        assert t.counters.reads / n > 10  # far above RMI's ~2
