"""Last-mile search functions."""

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import SearchBound
from repro.memsim import AddressSpace, PerfTracer, TracedArray
from repro.search.last_mile import (
    SEARCH_FUNCTIONS,
    binary_search,
    interpolation_search,
    linear_search,
)


def traced(keys):
    space = AddressSpace()
    return TracedArray.allocate(space, np.asarray(keys, dtype=np.uint64))


@pytest.mark.parametrize("search", sorted(SEARCH_FUNCTIONS))
class TestAllSearches:
    def test_matches_bisect_full_bound(self, search):
        keys = [2, 5, 5 + 6, 30, 31, 100, 1000]
        data = traced(keys)
        fn = SEARCH_FUNCTIONS[search]
        bound = SearchBound(0, len(keys) + 1)
        for probe in [0, 2, 3, 11, 30, 999, 1000, 1001]:
            assert fn(data, probe, bound) == bisect.bisect_left(keys, probe)

    def test_respects_restricted_bound(self, search):
        keys = list(range(0, 1000, 10))
        data = traced(keys)
        fn = SEARCH_FUNCTIONS[search]
        truth = bisect.bisect_left(keys, 501)
        assert fn(data, 501, SearchBound(truth - 3, truth + 4)) == truth

    def test_empty_bound(self, search):
        data = traced([1, 2, 3])
        fn = SEARCH_FUNCTIONS[search]
        assert fn(data, 2, SearchBound(1, 1)) == 1

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=200, unique=True),
        st.integers(0, 2**64 - 1),
        st.integers(0, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_bisect(self, search, keys, probe, slack):
        keys.sort()
        data = traced(keys)
        truth = bisect.bisect_left(keys, probe)
        bound = SearchBound(
            max(0, truth - slack), min(truth + slack + 1, len(keys) + 1)
        )
        assert SEARCH_FUNCTIONS[search](data, probe, bound) == truth


class TestCostProfiles:
    def test_binary_logarithmic_reads(self):
        keys = list(range(1_024))
        data = traced(keys)
        t = PerfTracer()
        binary_search(data, 513, SearchBound(0, 1025), t)
        assert t.counters.reads <= 12

    def test_linear_reads_proportional_to_offset(self):
        keys = list(range(0, 1000, 2))
        data = traced(keys)
        t = PerfTracer()
        linear_search(data, 101, SearchBound(0, 501), t)
        assert 45 <= t.counters.reads <= 60

    def test_interpolation_few_probes_on_uniform(self):
        keys = list(range(0, 100_000, 7))
        data = traced(keys)
        t = PerfTracer()
        pos = interpolation_search(data, 50_000, SearchBound(0, len(keys) + 1), t)
        assert pos == bisect.bisect_left(keys, 50_000)
        tb = PerfTracer()
        binary_search(data, 50_000, SearchBound(0, len(keys) + 1), tb)
        assert t.counters.reads < tb.counters.reads

    def test_binary_branches_mispredict_half(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.integers(0, 2**60, 4_096)).tolist()
        data = traced(keys)
        t = PerfTracer()
        for probe in rng.integers(0, 2**60, 200).tolist():
            binary_search(data, int(probe), SearchBound(0, len(keys) + 1), t)
        miss_rate = t.counters.branch_misses / t.counters.branches
        assert 0.3 < miss_rate < 0.7
