"""PerfTracer, NullTracer, branch predictor and TLB."""

from repro.memsim.branch import BranchPredictor
from repro.memsim.tlb import TLB
from repro.memsim.tracer import NULL_TRACER, PerfTracer


class TestBranchPredictor:
    def test_steady_taken_learned(self):
        p = BranchPredictor()
        results = [p.predict_and_update("s", True) for _ in range(10)]
        assert all(results[2:])  # converges within two updates

    def test_steady_not_taken_learned(self):
        p = BranchPredictor()
        results = [p.predict_and_update("s", False) for _ in range(10)]
        assert all(results[3:])

    def test_alternating_mispredicts_often(self):
        p = BranchPredictor()
        outcomes = [bool(i % 2) for i in range(100)]
        misses = sum(
            not p.predict_and_update("s", taken) for taken in outcomes
        )
        assert misses >= 40  # near-50% for a bimodal predictor

    def test_sites_independent(self):
        p = BranchPredictor()
        for _ in range(5):
            p.predict_and_update("a", True)
            p.predict_and_update("b", False)
        assert p.predict_and_update("a", True)
        assert p.predict_and_update("b", False)

    def test_reset(self):
        p = BranchPredictor()
        p.predict_and_update("a", False)
        p.reset()
        assert p.n_sites() == 0


class TestTLB:
    def test_hit_after_install(self):
        t = TLB(l1_entries=4, l2_entries=8)
        assert t.access_addr(0x1000) is False
        assert t.access_addr(0x1000) is True

    def test_same_page_shares_entry(self):
        t = TLB()
        t.access_addr(0x2000)
        assert t.access_addr(0x2FFF) is True  # same 4K page

    def test_l2_catches_l1_eviction(self):
        t = TLB(l1_entries=2, l2_entries=64)
        t.access_addr(0 << 12)
        t.access_addr(1 << 12)
        t.access_addr(2 << 12)  # evicts page 0 from L1
        assert t.access_addr(0 << 12) is True  # still in L2

    def test_capacity_miss(self):
        t = TLB(l1_entries=2, l2_entries=4)
        for page in range(10):
            t.access_addr(page << 12)
        assert t.access_addr(0 << 12) is False

    def test_flush(self):
        t = TLB()
        t.access_addr(0x5000)
        t.flush()
        assert t.access_addr(0x5000) is False


class TestPerfTracer:
    def test_read_counts(self):
        t = PerfTracer()
        t.read(0x1000, 8)
        assert t.counters.reads == 1
        assert t.counters.llc_misses >= 1

    def test_line_crossing_read_touches_two_lines(self):
        t = PerfTracer()
        t.read(0x1000 + 60, 8)  # crosses a 64B boundary
        assert t.counters.llc_misses + t.counters.l1_hits >= 2

    def test_repeat_read_hits_l1(self):
        t = PerfTracer()
        t.read(0x1000)
        before = t.counters.l1_hits
        t.read(0x1000)
        assert t.counters.l1_hits > before

    def test_instr_accumulates(self):
        t = PerfTracer()
        t.instr(3)
        t.instr()
        assert t.counters.instructions == 4

    def test_branch_counts(self):
        t = PerfTracer()
        for taken in (True, False, True, False):
            t.branch("x", taken)
        assert t.counters.branches == 4
        assert t.counters.branch_misses >= 1

    def test_tlb_miss_charges_walk(self):
        t = PerfTracer()
        t.read(0x100000)
        assert t.counters.tlb_misses == 1
        # Walk performed one extra cache access beyond the data line.
        total_cache_events = (
            t.counters.l1_hits
            + t.counters.l2_hits
            + t.counters.l3_hits
            + t.counters.llc_misses
        )
        assert total_cache_events == 2

    def test_flush_caches_forces_miss(self):
        t = PerfTracer()
        t.read(0x3000)
        t.flush_caches()
        before = t.counters.llc_misses
        t.read(0x3000)
        assert t.counters.llc_misses > before

    def test_snapshot_is_copy(self):
        t = PerfTracer()
        t.instr(5)
        snap = t.snapshot()
        t.instr(5)
        assert snap.instructions == 5
        assert t.counters.instructions == 10

    def test_counters_subtract_and_per_lookup(self):
        t = PerfTracer()
        t.instr(10)
        a = t.snapshot()
        t.instr(30)
        diff = t.snapshot() - a
        assert diff.instructions == 30
        assert diff.per_lookup(10).instructions == 3.0


class TestNullTracer:
    def test_all_noops(self):
        NULL_TRACER.read(0x100)
        NULL_TRACER.instr(5)
        NULL_TRACER.branch("x", True)  # must not raise
