"""Unit tests for the cluster simulator: faults, router, failure paths."""

import pytest

from repro.memsim.counters import PerfCountersF
from repro.obs.metrics import MetricsRegistry
from repro.serve.arrivals import poisson_arrivals
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.core import ServiceModel
from repro.serve.faults import (
    CRASH,
    SLOW,
    FaultConfig,
    fault_schedule,
    downtime_fraction,
)
from repro.serve.router import (
    RouterPolicy,
    ShardMap,
    pick_replica,
    request_keys,
)


def counters(instructions=50, llc_misses=3.0, branch_misses=1.0):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=branch_misses,
        llc_misses=llc_misses,
        l1_hits=4.0,
    )


def make_cluster(
    n_shards=2,
    n_replicas=2,
    n_cores=2,
    policy=RouterPolicy(),
    faults=None,
    span=1_000_000,
):
    smap = ShardMap.uniform(0, span, n_shards)
    svc = ServiceModel(counters())
    return Cluster(
        shard_map=smap,
        services=[svc] * n_shards,
        n_replicas=n_replicas,
        n_cores=n_cores,
        policy=policy,
        faults=faults,
    )


def spread_keys(n, span=1_000_000, seed=0):
    """Deterministic keys covering the whole [0, span) keyspace."""
    return request_keys(list(range(span // 1000, span, span // 1000)), n, seed)


class TestFaultConfig:
    def test_defaults_inject_nothing(self):
        cfg = FaultConfig()
        assert not cfg.enabled
        assert fault_schedule(cfg, 2, 2, 1e6) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(crash_mttf_ns=0.0)
        with pytest.raises(ValueError):
            FaultConfig(slow_mttf_ns=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(crash_mttr_ns=0.0)
        with pytest.raises(ValueError):
            FaultConfig(slow_mttf_ns=1e6, slow_factor=1.0)

    def test_enabled_when_either_process_is_on(self):
        assert FaultConfig(crash_mttf_ns=1e6).enabled
        assert FaultConfig(slow_mttf_ns=1e6).enabled


class TestFaultSchedule:
    CFG = FaultConfig(crash_mttf_ns=2e5, slow_mttf_ns=3e5, seed=11)

    def test_pure_function_of_inputs(self):
        a = fault_schedule(self.CFG, 3, 2, 2e6)
        b = fault_schedule(self.CFG, 3, 2, 2e6)
        assert a == b
        assert a  # dense enough to actually generate events

    def test_seed_changes_schedule(self):
        other = FaultConfig(crash_mttf_ns=2e5, slow_mttf_ns=3e5, seed=12)
        assert fault_schedule(self.CFG, 3, 2, 2e6) != fault_schedule(
            other, 3, 2, 2e6
        )

    def test_sorted_and_within_horizon(self):
        events = fault_schedule(self.CFG, 3, 2, 2e6)
        keys = [(e.time_ns, e.shard, e.replica, e.kind) for e in events]
        assert keys == sorted(keys)
        assert all(0.0 < e.time_ns < 2e6 for e in events)
        assert all(e.duration_ns > 0.0 for e in events)

    def test_adding_replicas_preserves_existing_streams(self):
        """Per-(shard, replica, kind) seeding: topology growth is stable."""
        small = fault_schedule(self.CFG, 2, 1, 2e6)
        large = fault_schedule(self.CFG, 2, 3, 2e6)
        large_sub = [e for e in large if e.replica == 0]
        assert small == large_sub

    def test_topology_and_horizon_validation(self):
        with pytest.raises(ValueError):
            fault_schedule(self.CFG, 0, 1, 1e6)
        with pytest.raises(ValueError):
            fault_schedule(self.CFG, 1, 0, 1e6)
        with pytest.raises(ValueError):
            fault_schedule(self.CFG, 1, 1, 0.0)

    def test_downtime_fraction_counts_crashes_only(self):
        events = fault_schedule(self.CFG, 2, 2, 2e6)
        frac = downtime_fraction(events, 2, 2, 2e6)
        assert 0.0 < frac < 1.0
        crash_only = [e for e in events if e.kind == CRASH]
        assert downtime_fraction(crash_only, 2, 2, 2e6) == frac


class TestShardMap:
    def test_shard_for_binary_search(self):
        smap = ShardMap([0, 100, 200])
        assert smap.shard_for(0) == 0
        assert smap.shard_for(99) == 0
        assert smap.shard_for(100) == 1
        assert smap.shard_for(250) == 2

    def test_below_first_bound_clamps_to_shard_zero(self):
        smap = ShardMap([100, 200])
        assert smap.shard_for(5) == 0

    def test_from_keys_equal_count_split(self):
        keys = list(range(0, 1000, 10))
        smap = ShardMap.from_keys(keys, 4)
        assert smap.n_shards == 4
        per_shard = [0] * 4
        for k in keys:
            per_shard[smap.shard_for(k)] += 1
        assert per_shard == [25, 25, 25, 25]

    def test_from_keys_nudges_duplicate_bounds(self):
        smap = ShardMap.from_keys([5, 5, 5, 5, 9], 4)
        bounds = smap.lower_bounds
        assert bounds == sorted(set(bounds))

    def test_uniform(self):
        smap = ShardMap.uniform(0, 400, 4)
        assert smap.lower_bounds == [0, 100, 200, 300]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap([])
        with pytest.raises(ValueError):
            ShardMap([10, 10])
        with pytest.raises(ValueError):
            ShardMap.from_keys([1, 2], 3)
        with pytest.raises(ValueError):
            ShardMap.uniform(5, 5, 1)
        with pytest.raises(ValueError):
            ShardMap.uniform(0, 2, 4)


class TestRouterPolicy:
    def test_backoff_doubles_then_caps(self):
        p = RouterPolicy(backoff_base_ns=100.0, backoff_cap_ns=450.0)
        assert p.backoff_ns(1) == 100.0
        assert p.backoff_ns(2) == 200.0
        assert p.backoff_ns(3) == 400.0
        assert p.backoff_ns(4) == 450.0  # capped
        assert p.backoff_ns(10) == 450.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RouterPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RouterPolicy(hedge_after_ns=0.0)
        with pytest.raises(ValueError):
            RouterPolicy(backoff_base_ns=-1.0)
        with pytest.raises(ValueError):
            RouterPolicy(batch_window_ns=-1.0)
        with pytest.raises(ValueError):
            RouterPolicy().backoff_ns(0)


class _Rep:
    def __init__(self, rid, backlog, up=True):
        self.rid = rid
        self.backlog = backlog
        self.up = up


class TestPickReplica:
    def test_least_backlog_wins(self):
        reps = [_Rep(0, 5), _Rep(1, 2), _Rep(2, 9)]
        assert pick_replica(reps).rid == 1

    def test_tie_goes_to_lowest_id(self):
        reps = [_Rep(0, 3), _Rep(1, 3)]
        assert pick_replica(reps).rid == 0

    def test_down_replicas_skipped(self):
        reps = [_Rep(0, 0, up=False), _Rep(1, 7)]
        assert pick_replica(reps).rid == 1

    def test_exclude_forces_different_replica(self):
        reps = [_Rep(0, 0), _Rep(1, 7)]
        assert pick_replica(reps, exclude=0).rid == 1

    def test_none_when_all_down_or_excluded(self):
        assert pick_replica([_Rep(0, 0, up=False)]) is None
        assert pick_replica([_Rep(0, 0)], exclude=0) is None


class TestRequestKeys:
    def test_deterministic_and_from_key_set(self):
        keys = list(range(100, 200))
        a = request_keys(keys, 50, seed=4)
        b = request_keys(keys, 50, seed=4)
        assert a == b
        assert set(a) <= set(keys)
        assert request_keys(keys, 50, seed=5) != a

    def test_validation(self):
        with pytest.raises(ValueError):
            request_keys([1, 2, 3], 0, seed=0)


class TestClusterValidation:
    def test_services_must_match_shards(self):
        smap = ShardMap.uniform(0, 100, 2)
        with pytest.raises(ValueError):
            Cluster(shard_map=smap, services=[ServiceModel(counters())])

    def test_replica_count_positive(self):
        smap = ShardMap.uniform(0, 100, 1)
        with pytest.raises(ValueError):
            Cluster(
                shard_map=smap,
                services=[ServiceModel(counters())],
                n_replicas=0,
            )

    def test_simulate_input_validation(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            simulate_cluster(cluster, [0.0, 1.0], [5])
        with pytest.raises(ValueError):
            simulate_cluster(cluster, [], [])


class TestClusterFaultFree:
    def test_routes_to_the_owning_shard(self):
        cluster = make_cluster(n_shards=4)
        arrivals = poisson_arrivals(1e6, 200, seed=0)
        keys = spread_keys(200)
        result = simulate_cluster(cluster, arrivals, keys)
        for r in result.records:
            assert r.shard == cluster.shard_map.shard_for(r.key)
            assert r.completed and not r.failed
            assert r.attempts == 1 and r.retries == 0
        assert result.availability == 1.0
        assert result.total_retries == 0
        assert result.crashes == 0 and result.slow_events == 0

    def test_summary_covers_all_requests(self):
        cluster = make_cluster()
        arrivals = poisson_arrivals(2e6, 300, seed=1)
        result = simulate_cluster(cluster, arrivals, spread_keys(300))
        s = result.summary()
        assert s.n == 300
        assert result.throughput_per_sec > 0
        assert result.max_queue_depth >= 1

    def test_shard_stats_sum_to_totals(self):
        cluster = make_cluster(n_shards=3)
        arrivals = poisson_arrivals(2e6, 400, seed=2)
        result = simulate_cluster(cluster, arrivals, spread_keys(400))
        assert sum(s.completed for s in result.shard_stats) == result.completed
        assert all(s.completed > 0 for s in result.shard_stats)


class TestCrashFaults:
    def crashy(self, seed=0):
        # MTTF far below the run span: crashes are certain.
        return FaultConfig(crash_mttf_ns=3e4, crash_mttr_ns=2e4, seed=seed)

    def test_crashes_trigger_retries_and_recovery(self):
        cluster = make_cluster(faults=self.crashy())
        arrivals = poisson_arrivals(4e6, 600, seed=3)
        result = simulate_cluster(cluster, arrivals, spread_keys(600))
        assert result.crashes > 0
        assert result.total_retries > 0
        assert result.completed + result.failed == 600
        # Replicated shards with retries: the vast majority completes.
        assert result.availability > 0.9

    def test_retried_requests_marked(self):
        cluster = make_cluster(faults=self.crashy())
        arrivals = poisson_arrivals(4e6, 600, seed=3)
        result = simulate_cluster(cluster, arrivals, spread_keys(600))
        retried = [r for r in result.records if r.retries > 0]
        assert retried
        assert all(r.attempts >= 2 for r in retried)

    def test_unreplicated_shard_fails_requests_when_dark(self):
        policy = RouterPolicy(
            max_attempts=2, backoff_base_ns=10.0, backoff_cap_ns=20.0
        )
        faults = FaultConfig(crash_mttf_ns=2e4, crash_mttr_ns=4e5, seed=1)
        cluster = make_cluster(
            n_shards=1, n_replicas=1, policy=policy, faults=faults
        )
        arrivals = poisson_arrivals(4e6, 500, seed=4)
        result = simulate_cluster(cluster, arrivals, [50] * 500)
        assert result.failed > 0
        assert result.availability < 1.0
        failed = [r for r in result.records if r.failed]
        assert all(not r.completed for r in failed)
        assert all(r.attempts == 2 for r in failed)

    def test_degraded_routing_concentrates_on_survivor(self):
        """One replica crashed for most of the run: the other serves."""
        # Seed 9 with this horizon yields exactly one crash (replica 1
        # at t=3463 ns, down for 2.6 ms -- the rest of the run).
        faults = FaultConfig(crash_mttf_ns=3e4, crash_mttr_ns=1e6, seed=9)
        cluster = make_cluster(n_shards=1, n_replicas=2, faults=faults)
        arrivals = poisson_arrivals(2e6, 400, seed=5)
        result = simulate_cluster(
            cluster, arrivals, [50] * 400, fault_horizon_ns=2e4
        )
        assert result.crashes == 1
        assert result.availability == 1.0
        by_survivor = sum(1 for r in result.records if r.replica == 0)
        assert by_survivor > 0.9 * len(result.records)

    def test_to_metrics_publishes_counters_and_min_gauge(self):
        cluster = make_cluster(faults=self.crashy())
        arrivals = poisson_arrivals(4e6, 600, seed=3)
        result = simulate_cluster(cluster, arrivals, spread_keys(600))
        reg = MetricsRegistry()
        result.to_metrics(registry=reg)
        snap = reg.snapshot()
        assert snap["counters"]["serve.cluster.requests"] == 600
        assert snap["counters"]["serve.cluster.completed"] == result.completed
        assert snap["counters"]["serve.cluster.retries"] == result.total_retries
        assert (
            snap["counters"]["serve.cluster.faults.crashes"] == result.crashes
        )
        assert snap["gauges"]["serve.cluster.availability.min"] == (
            result.availability
        )
        assert snap["histograms"]["serve.cluster.shard_queue_depth.max"][
            "count"
        ] == len(result.shard_stats)
        # Low-water semantics: a later, better run must not raise it.
        reg.gauge("serve.cluster.availability.min").set_min(1.0)
        assert reg.gauge("serve.cluster.availability.min").value == (
            result.availability
        )
        # And merge_snapshot keeps the minimum for .min-suffixed gauges.
        other = MetricsRegistry()
        other.gauge("serve.cluster.availability.min").set(1.0)
        other.merge_snapshot(snap)
        assert other.gauge("serve.cluster.availability.min").value == (
            result.availability
        )


class TestSlowFaults:
    def test_gray_replica_inflates_latency(self):
        # First slow window opens early and lasts the whole run.
        faults = FaultConfig(
            slow_mttf_ns=1e4, slow_mttr_ns=1e8, slow_factor=8.0, seed=0
        )
        slow_cluster = make_cluster(n_shards=1, n_replicas=1, faults=faults)
        ok_cluster = make_cluster(n_shards=1, n_replicas=1)
        arrivals = poisson_arrivals(1e6, 300, seed=6)
        keys = [50] * 300
        slow = simulate_cluster(slow_cluster, arrivals, keys)
        ok = simulate_cluster(ok_cluster, arrivals, keys)
        assert slow.slow_events > 0
        assert slow.summary().p99_ns > ok.summary().p99_ns
        # Slow is a gray failure: nothing is lost, only delayed.
        assert slow.availability == 1.0
        assert slow.total_retries == 0

    def test_hedging_fires_and_duplicates_to_other_replica(self):
        faults = FaultConfig(
            slow_mttf_ns=5e4, slow_mttr_ns=5e4, slow_factor=8.0, seed=3
        )
        policy = RouterPolicy(hedge_after_ns=2_000.0)
        cluster = make_cluster(
            n_shards=1, n_replicas=2, policy=policy, faults=faults
        )
        arrivals = poisson_arrivals(3e6, 500, seed=7)
        result = simulate_cluster(cluster, arrivals, [50] * 500)
        assert result.total_hedges > 0
        hedged = [r for r in result.records if r.hedged]
        assert hedged
        assert all(r.attempts >= 2 for r in hedged)
        assert result.availability == 1.0

    def test_hedging_disabled_with_single_replica(self):
        policy = RouterPolicy(hedge_after_ns=1.0)
        cluster = make_cluster(n_shards=1, n_replicas=1, policy=policy)
        arrivals = poisson_arrivals(3e6, 200, seed=8)
        result = simulate_cluster(cluster, arrivals, [50] * 200)
        assert result.total_hedges == 0


class FakeMeasurement:
    """Duck-typed stand-in for repro.bench.harness.Measurement."""

    def __init__(self, name, size_bytes, **counter_kwargs):
        self.index = name
        self.config = {}
        self.size_bytes = size_bytes
        self.counters = counters(**counter_kwargs)


class TestClusterSelection:
    def families(self):
        def fam(name, size, **kw):
            return [FakeMeasurement(name, size, **kw) for _ in range(2)]

        return {
            "Small": fam("Small", 2_000, instructions=80),
            "Fast": fam("Fast", 40_000, instructions=30, llc_misses=1.0),
            "Big": fam("Big", 400_000, instructions=40, llc_misses=2.0),
        }

    def select(self, **overrides):
        from repro.serve.selector import select_cluster_under_slo

        keys = list(range(0, 10_000, 5))
        kwargs = dict(
            offered_per_sec=4e6,
            p99_slo_ns=100_000.0,
            n_requests=300,
            seed=0,
            n_replicas=2,
            n_cores=2,
        )
        kwargs.update(overrides)
        return select_cluster_under_slo(
            self.families(), ShardMap.from_keys(keys, 2), keys, **kwargs
        )

    def test_cheapest_eligible_family_wins(self):
        sel = self.select()
        assert sel.chosen is not None
        assert sel.chosen.index == "Small"
        assert {c.index for c in sel.candidates} == {"Small", "Fast", "Big"}
        assert all(c.summary is not None for c in sel.candidates)

    def test_per_shard_memory_budget_excludes_families(self):
        sel = self.select(shard_memory_budget_bytes=10_000.0)
        eligible = {c.index for c in sel.eligible()}
        assert "Big" not in eligible and "Fast" not in eligible
        assert sel.chosen.index == "Small"

    def test_impossible_slo_chooses_none(self):
        sel = self.select(p99_slo_ns=1.0)
        assert sel.chosen is None
        assert sel.eligible() == []

    def test_availability_floor_under_dense_faults(self):
        # One replica per shard and long crashes: requests are lost.
        faults = FaultConfig(crash_mttf_ns=2e4, crash_mttr_ns=4e5, seed=1)
        sel = self.select(
            n_replicas=1,
            min_availability=1.0,
            faults=faults,
            policy=RouterPolicy(
                max_attempts=2, backoff_base_ns=10.0, backoff_cap_ns=20.0
            ),
        )
        assert any(c.availability < 1.0 for c in sel.candidates)
        assert all(
            c.availability >= 1.0 for c in sel.eligible()
        )

    def test_deterministic(self):
        a, b = self.select(), self.select()
        assert a.candidates == b.candidates
        assert a.chosen == b.chosen


class TestBatching:
    def test_batched_run_completes_everything(self):
        policy = RouterPolicy(batch_window_ns=500.0)
        cluster = make_cluster(policy=policy)
        arrivals = poisson_arrivals(2e6, 400, seed=9)
        keys = spread_keys(400)
        result = simulate_cluster(cluster, arrivals, keys)
        assert result.completed == 400
        assert result.availability == 1.0

    def test_batching_delays_dispatch(self):
        arrivals = poisson_arrivals(1e5, 100, seed=10)  # sparse traffic
        keys = [50] * 100
        plain = simulate_cluster(make_cluster(n_shards=1), arrivals, keys)
        batched = simulate_cluster(
            make_cluster(
                n_shards=1, policy=RouterPolicy(batch_window_ns=2_000.0)
            ),
            arrivals,
            keys,
        )
        # Sparse arrivals: each batch holds one request that waited out
        # the full window before dispatch.
        assert batched.summary().p50_ns == pytest.approx(
            plain.summary().p50_ns + 2_000.0
        )

    def test_batched_run_is_deterministic(self):
        policy = RouterPolicy(batch_window_ns=300.0)
        arrivals = poisson_arrivals(2e6, 300, seed=11)
        keys = spread_keys(300)
        a = simulate_cluster(make_cluster(policy=policy), arrivals, keys)
        b = simulate_cluster(make_cluster(policy=policy), arrivals, keys)
        assert [(r.rid, r.finish_ns) for r in a.records] == [
            (r.rid, r.finish_ns) for r in b.records
        ]
