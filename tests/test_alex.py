"""ALEX-style updatable learned index extension."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned.alex import AlexIndex, _DataNode


class TestDataNode:
    def test_bulk_and_find(self):
        keys = list(range(0, 100, 3))
        node = _DataNode.bulk_load(keys, [k * 2 for k in keys], 0.7, 0.85)
        for k in keys:
            assert node.find(k) == k * 2
        assert node.find(1) is None
        assert node.find(1000) is None

    def test_insert_preserves_order(self):
        node = _DataNode.bulk_load([10, 20, 30], [1, 2, 3], 0.5, 0.9)
        assert node.insert(25, 99)
        stored = [k for k, _ in node.items()]
        assert stored == [10, 20, 25, 30]
        assert node.find(25) == 99

    def test_overwrite_does_not_grow(self):
        node = _DataNode.bulk_load([1, 2, 3], [0, 0, 0], 0.5, 0.9)
        n_before = node.n
        assert node.insert(2, 42)
        assert node.n == n_before
        assert node.find(2) == 42

    def test_refuses_when_too_dense(self):
        node = _DataNode.bulk_load(list(range(8)), [0] * 8, 0.9, 0.9)
        filled = 0
        while node.insert(1000 + filled, 0):
            filled += 1
            assert filled < 100  # must refuse eventually
        assert node.n / node.capacity > 0.8

    def test_shift_through_gap(self):
        # Force a dense cluster with a distant gap.
        node = _DataNode(capacity=8, max_density=0.9)
        for slot, key in [(0, 10), (1, 20), (2, 30), (3, 40)]:
            node.keys[slot] = key
            node.values[slot] = key
            node.n += 1
        assert node.insert(25, 25)
        stored = [k for k, _ in node.items()]
        assert stored == [10, 20, 25, 30, 40]


class TestAlexIndex:
    def test_bulk_load_and_get(self):
        keys = sorted(random.Random(1).sample(range(10**9), 5_000))
        alex = AlexIndex.bulk_load(keys, [k % 97 for k in keys], n_buckets=64)
        for k in keys[::37]:
            assert alex.get(k) == k % 97
        assert alex.get(keys[0] - 1) is None
        assert len(alex) == 5_000

    def test_bulk_rejects_unsorted(self):
        with pytest.raises(ValueError):
            AlexIndex.bulk_load([3, 1, 2], [0, 0, 0])

    def test_insert_into_empty(self):
        alex = AlexIndex(n_buckets=16)
        alex.insert(5, 50)
        assert alex.get(5) == 50
        assert len(alex) == 1

    def test_skewed_inserts_trigger_splits(self):
        keys = sorted(random.Random(2).sample(range(10**9), 2_000))
        alex = AlexIndex.bulk_load(
            keys, [0] * len(keys), n_buckets=64, target_node_keys=128
        )
        nodes_before = alex.n_data_nodes
        base = keys[1_000]
        for i in range(1, 2_000):
            alex.insert(base + i, i)
        assert alex.n_data_nodes > nodes_before
        for i in range(1, 2_000, 97):
            assert alex.get(base + i) == i

    def test_items_sorted(self):
        keys = sorted(random.Random(3).sample(range(10**8), 1_000))
        alex = AlexIndex.bulk_load(keys, keys, n_buckets=32)
        out = [k for k, _ in alex.items()]
        assert out == keys

    def test_range(self):
        keys = list(range(0, 1_000, 7))
        alex = AlexIndex.bulk_load(keys, keys, n_buckets=16)
        out = [k for k, _ in alex.range(100, 300)]
        assert out == [k for k in keys if 100 <= k < 300]

    def test_monotone_inserts(self):
        alex = AlexIndex(n_buckets=16, target_node_keys=64)
        for i in range(3_000):
            alex.insert(i * 5, i)
        assert len(alex) == 3_000
        for i in range(0, 3_000, 113):
            assert alex.get(i * 5) == i
        assert alex.get(3) is None

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AlexIndex(n_buckets=0)
        with pytest.raises(ValueError):
            AlexIndex(density=0.9, max_density=0.8)


class TestAlexPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**40), st.integers(0, 2**20)),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_semantics(self, ops):
        alex = AlexIndex(n_buckets=16, target_node_keys=32)
        reference = {}
        for key, value in ops:
            alex.insert(key, value)
            reference[key] = value
        assert len(alex) == len(reference)
        for key in list(reference)[:60]:
            assert alex.get(key) == reference[key]
        assert [k for k, _ in alex.items()] == sorted(reference)

    @given(st.lists(st.integers(0, 2**50), min_size=2, max_size=300, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_bulk_then_insert_interleaved(self, raw_keys):
        raw_keys.sort()
        half = len(raw_keys) // 2
        alex = AlexIndex.bulk_load(
            raw_keys[:half] or [0], list(range(half or 1)), n_buckets=8,
            target_node_keys=16,
        )
        reference = dict(zip(raw_keys[:half] or [0], range(half or 1)))
        for i, key in enumerate(raw_keys[half:]):
            alex.insert(key, 10_000 + i)
            reference[key] = 10_000 + i
        for key, value in reference.items():
            assert alex.get(key) == value
