"""Seed-determinism of the serving subsystem, end to end.

In the style of ``test_parallel_determinism.py``: the `ext_serving`
report must be byte-identical whether its measurement grid was computed
serially, on a 2-process pool, or replayed from the persistent cache --
and the simulation layer itself must be a pure function of its seeds.
Also holds the ISSUE's acceptance criteria: p99 non-decreasing in
offered load, and an SLO table covering >= 3 indexes on 2 datasets.
"""

from __future__ import annotations

import pytest

from repro.bench.cache import MeasurementCache
from repro.bench.config import BenchSettings
from repro.bench.experiments import common, ext_serving
from repro.bench.parallel import run_cells


@pytest.fixture(autouse=True)
def _isolate_measurement_caches():
    common.set_active_cache(None)
    common.clear_caches()
    yield
    common.set_active_cache(None)
    common.clear_caches()


@pytest.fixture(scope="module")
def settings():
    return BenchSettings(
        n_keys=2_500, n_lookups=40, warmup=20, max_configs=2
    )


def fresh_report(settings, jobs: int, cache=None) -> str:
    """Recompute the grid at ``jobs`` workers, then format the report."""
    common.clear_caches()
    cells = ext_serving.cells(settings)
    assert cells
    _, stats = run_cells(cells, jobs=jobs, cache=cache)
    return ext_serving.run(settings), stats


class TestReportDeterminism:
    def test_serial_equals_jobs2(self, settings):
        serial, serial_stats = fresh_report(settings, jobs=1)
        parallel, parallel_stats = fresh_report(settings, jobs=2)
        assert serial_stats.executed > 0
        assert parallel_stats.executed == serial_stats.executed
        assert serial == parallel

    def test_cache_replay_is_identical(self, settings, tmp_path):
        cache = MeasurementCache(str(tmp_path / "cache"))
        first, first_stats = fresh_report(settings, jobs=2, cache=cache)
        assert first_stats.executed > 0
        second, second_stats = fresh_report(settings, jobs=1, cache=cache)
        assert second_stats.executed == 0
        assert second_stats.cache_hits == second_stats.unique_cells
        assert first == second

    def test_repeat_run_same_process(self, settings):
        first, _ = fresh_report(settings, jobs=1)
        second, _ = fresh_report(settings, jobs=1)
        assert first == second


class TestAcceptance:
    """The ISSUE's ext_serving acceptance criteria."""

    def test_p99_monotone_in_offered_load(self, settings):
        common.clear_caches()
        run_cells(ext_serving.cells(settings), jobs=1)
        for ds_name in ext_serving._datasets(settings):
            ds, wl = common.dataset_and_workload(ds_name, settings)
            for index_name in ext_serving._indexes(settings):
                m = common.fastest(
                    common.sweep(ds, wl, index_name, settings)
                )
                curve = ext_serving.latency_curve(m, settings)
                p99s = [s.p99_ns for _, _, s in curve]
                assert p99s == sorted(p99s), (ds_name, index_name, p99s)

    def test_slo_table_covers_three_indexes_two_datasets(self, settings):
        report, _ = fresh_report(settings, jobs=1)
        for ds_name in ("amzn", "osm"):
            assert f"SLO selection, {ds_name}" in report
        for index_name in ("RMI", "PGM", "BTree"):
            assert index_name in report
        assert "-> chosen:" in report

    def test_report_has_throughput_latency_curves(self, settings):
        report, _ = fresh_report(settings, jobs=1)
        assert "throughput-latency curve, amzn" in report
        assert "throughput-latency curve, osm" in report
        assert "p99 ns" in report and "p99.9 ns" in report
        assert "arrival-process shape" in report
