"""Cross-index property tests on adversarial key distributions.

Hypothesis drives every ordered index with pathological sorted arrays --
dense runs, enormous gaps, clusters near 2**64, two-point sets -- and
arbitrary probe keys.  The invariant under test is the benchmark's core
contract: the returned bound contains the true lower-bound position.
"""

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_index

INDEX_CONFIGS = [
    ("RMI", {"branching": 32}),
    ("PGM", {"epsilon": 8}),
    ("RS", {"epsilon": 8, "radix_bits": 6}),
    ("RBS", {"radix_bits": 8}),
    ("BTree", {"gap": 2}),
    ("IBTree", {"gap": 2}),
    ("FAST", {"gap": 2}),
    ("ART", {"gap": 2}),
    ("FST", {"gap": 2}),
    ("Wormhole", {"gap": 2, "leaf_size": 4}),
    ("BS", {}),
]


@st.composite
def adversarial_keys(draw):
    """Sorted unique uint64 arrays with nasty local structure."""
    flavor = draw(st.sampled_from(["dense", "gaps", "top", "mixed", "tiny"]))
    if flavor == "dense":
        start = draw(st.integers(0, 2**63))
        n = draw(st.integers(2, 120))
        keys = list(range(start, start + n))
    elif flavor == "gaps":
        n = draw(st.integers(2, 60))
        gaps = draw(
            st.lists(
                st.integers(1, 2**55), min_size=n, max_size=n
            )
        )
        keys, total = [], 0
        for g in gaps:
            total += g
            keys.append(total)
    elif flavor == "top":
        n = draw(st.integers(2, 80))
        keys = sorted({2**64 - 1 - draw(st.integers(0, 10_000)) for _ in range(n)})
    elif flavor == "tiny":
        keys = sorted(draw(st.sets(st.integers(0, 50), min_size=2, max_size=20)))
    else:
        keys = sorted(
            draw(
                st.sets(
                    st.integers(0, 2**64 - 1), min_size=2, max_size=150
                )
            )
        )
    return keys


@pytest.mark.parametrize("index_name,config", INDEX_CONFIGS)
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_bound_contains_lower_bound(index_name, config, data):
    keys = data.draw(adversarial_keys())
    idx = make_index(index_name, **config).build(
        np.array(keys, dtype=np.uint64)
    )
    probes = [
        data.draw(st.integers(0, 2**64 - 1)),
        keys[0],
        keys[-1],
        max(keys[0] - 1, 0),
        min(keys[-1] + 1, 2**64 - 1),
        keys[len(keys) // 2],
    ]
    for probe in probes:
        bound = idx.lookup(probe)
        true_pos = bisect.bisect_left(keys, probe)
        assert bound.contains(true_pos), (
            f"{index_name}: probe {probe} -> [{bound.lo}, {bound.hi}) "
            f"misses {true_pos}"
        )


@pytest.mark.parametrize("index_name,config", INDEX_CONFIGS)
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_bound_is_clamped_to_array(index_name, config, data):
    keys = data.draw(adversarial_keys())
    idx = make_index(index_name, **config).build(
        np.array(keys, dtype=np.uint64)
    )
    probe = data.draw(st.integers(0, 2**64 - 1))
    bound = idx.lookup(probe)
    assert 0 <= bound.lo < bound.hi <= len(keys) + 1
