"""PGM index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.learned.pgm import PGMIndex
from repro.memsim import PerfTracer

from conftest import build


class TestPGMValidity:
    @pytest.mark.parametrize("epsilon", [4, 16, 64, 256])
    def test_valid_on_all_datasets(self, all_datasets_small, epsilon):
        for name, ds in all_datasets_small.items():
            idx = build("PGM", ds, epsilon=epsilon)
            probes = list(ds.keys[::41]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, name

    def test_valid_on_absent_keys(self, amzn_small, amzn_workload):
        idx = build("PGM", amzn_small, epsilon=16)
        assert validate_index(idx, amzn_workload.keys_py) is None

    def test_extreme_probes(self, amzn_small, extreme_probe_keys):
        idx = build("PGM", amzn_small, epsilon=8)
        assert validate_index(idx, extreme_probe_keys) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=300, unique=True),
        st.integers(0, 2**64 - 1),
        st.sampled_from([2, 8, 32]),
    )
    @settings(max_examples=50, deadline=None)
    def test_validity_property(self, keys, probe, eps):
        keys.sort()
        idx = PGMIndex(epsilon=eps).build(np.array(keys, dtype=np.uint64))
        assert validate_index(idx, [probe]) is None


class TestPGMStructure:
    def test_bound_width_limited_by_epsilon(self, amzn_small):
        eps = 16
        idx = build("PGM", amzn_small, epsilon=eps)
        for key in amzn_small.keys[::97]:
            bound = idx.lookup(int(key))
            assert len(bound) <= 2 * eps + 3

    def test_multilevel_on_hard_data(self, osm_small):
        idx = build("PGM", osm_small, epsilon=4, root_limit=4)
        assert idx.n_levels >= 2

    def test_smaller_epsilon_bigger_index(self, amzn_small):
        small = build("PGM", amzn_small, epsilon=256)
        big = build("PGM", amzn_small, epsilon=4)
        assert big.size_bytes() > small.size_bytes()

    def test_lookup_descends_levels(self, osm_small):
        idx = build("PGM", osm_small, epsilon=8, root_limit=4)
        t = PerfTracer()
        idx.lookup(int(osm_small.keys[100]), t)
        # At least one read per level.
        assert t.counters.reads >= idx.n_levels

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            PGMIndex(epsilon=0)

    def test_tiny_dataset(self):
        idx = PGMIndex(epsilon=4).build(np.array([7], dtype=np.uint64))
        assert validate_index(idx, [0, 7, 8, 2**64 - 1]) is None

    def test_mean_log2_error(self):
        assert PGMIndex(epsilon=31).mean_log2_error() == pytest.approx(6.0)
