"""Mixed read/write workload harness."""

import pytest

from repro.bench.readwrite import (
    DictStore,
    SortedArrayStore,
    default_stores,
    make_mixed_workload,
    run_mixed,
)


class TestWorkloadGeneration:
    def test_counts_and_mix(self):
        wl = make_mixed_workload(1_000, 0.7, n_preload=200, seed=1)
        assert wl.n_ops == 1_000
        reads = sum(1 for op in wl.operations if op[0] == "read")
        assert 600 <= reads <= 800
        assert len(wl.preload) == 200

    def test_pure_read_and_pure_write(self):
        reads_only = make_mixed_workload(200, 1.0, n_preload=50, seed=2)
        assert all(op[0] == "read" for op in reads_only.operations)
        writes_only = make_mixed_workload(200, 0.0, n_preload=50, seed=2)
        assert all(op[0] == "insert" for op in writes_only.operations)

    def test_reads_target_known_keys(self):
        wl = make_mixed_workload(500, 0.5, n_preload=100, seed=3)
        known = {k for k, _ in wl.preload}
        known |= {op[1] for op in wl.operations if op[0] == "insert"}
        for op in wl.operations:
            if op[0] == "read":
                assert op[1] in known

    def test_deterministic(self):
        a = make_mixed_workload(300, 0.5, n_preload=50, seed=7)
        b = make_mixed_workload(300, 0.5, n_preload=50, seed=7)
        assert a.operations == b.operations

    def test_uniform_distribution_mode(self):
        wl = make_mixed_workload(
            300, 0.5, n_preload=50, distribution="uniform", seed=4
        )
        assert wl.n_ops == 300

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_mixed_workload(10, 1.5)
        with pytest.raises(ValueError):
            make_mixed_workload(10, 0.5, distribution="normal")


class TestRunMixed:
    def test_all_reads_hit(self):
        wl = make_mixed_workload(400, 0.6, n_preload=100, seed=5)
        result = run_mixed("dict", DictStore, wl)
        reads = sum(1 for op in wl.operations if op[0] == "read")
        assert result.reads_hit == reads
        assert result.ops_per_sec > 0

    @pytest.mark.parametrize("name", sorted(default_stores()))
    def test_every_store_agrees_with_dict(self, name):
        wl = make_mixed_workload(300, 0.5, n_preload=80, seed=6)
        reference = run_mixed("dict", DictStore, wl)
        result = run_mixed(name, default_stores()[name], wl)
        assert result.reads_hit == reference.reads_hit

    def test_sorted_array_store_semantics(self):
        s = SortedArrayStore()
        s.insert(5, 1)
        s.insert(3, 2)
        s.insert(5, 3)  # overwrite
        assert s.get(5) == 3
        assert s.get(3) == 2
        assert s.get(4) is None
