"""Differential tests: the tenancy layer vs the raw cluster simulator,
and the ``ext_tenants`` report across execution strategies.

The tentpole invariant, one layer up from
``test_cluster_differential.py``: a single-tenant, no-admission-control
:class:`ScenarioSpec` replayed through the tenancy layer IS the direct
:func:`simulate_cluster` run -- the degenerate key space samples the
exact ``request_keys`` stream, the trace merge is the identity, and the
overridden hooks are behaviour-preserving -- so every per-request float
and every percentile table must be *byte-identical* (exact ``==``, no
approx).  This holds with sharded/replicated topologies, non-default
router policies, and fault injection; only admission control (the new
behaviour) is allowed to break it.

Every byte-identity test runs under both serving engines (``event`` and
``fast``); ``TestCrossEngineByteIdentity`` additionally compares the
engines against each other -- including on admission-control runs,
where both engines must shed the *same* requests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.cache import MeasurementCache
from repro.bench.config import BenchSettings
from repro.bench.experiments import common, ext_tenants
from repro.bench.parallel import run_cells
from repro.memsim.counters import PerfCountersF
from repro.serve.arrivals import poisson_arrivals
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.core import ServiceModel
from repro.serve.fastsim import SERVE_ENGINE_NAMES
from repro.serve.faults import FaultConfig
from repro.serve.router import RouterPolicy, ShardMap, request_keys
from repro.serve.scenario import (
    AdmissionSpec,
    FaultSpec,
    PolicySpec,
    TopologySpec,
    single_tenant_spec,
)
from repro.serve.tenancy import replay_trace, simulate_scenario
from repro.serve.trace import TenantTrace

RATE = 3e5
N_REQ = 400


@pytest.fixture(params=SERVE_ENGINE_NAMES)
def engine(request, monkeypatch):
    """Run the test under each serving engine's ambient default."""
    monkeypatch.setenv("REPRO_SERVE_ENGINE", request.param)
    return request.param


def counters(instructions=500):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=5.0,
        llc_misses=30.0,
        l1_hits=40.0,
    )


@pytest.fixture(scope="module")
def keys():
    raw = np.random.default_rng(0).integers(
        0, 2**40, size=6000, dtype=np.uint64
    )
    return np.unique(raw)


def services(n_shards):
    return [ServiceModel(counters()) for _ in range(n_shards)]


def direct_run(keys, seed, topology, policy, faults, horizon):
    """The equivalent hand-wired cluster run for a degenerate spec."""
    shard_map = ShardMap.from_keys(keys, topology.n_shards)
    cluster = Cluster(
        shard_map=shard_map,
        services=services(topology.n_shards),
        n_replicas=topology.n_replicas,
        n_cores=topology.n_cores,
        policy=policy,
        faults=faults,
    )
    return simulate_cluster(
        cluster,
        poisson_arrivals(RATE, N_REQ, seed),
        request_keys(keys, N_REQ, seed),
        fault_horizon_ns=horizon,
    )


def assert_records_identical(tenancy_records, cluster_records):
    assert len(tenancy_records) == len(cluster_records)
    for a, b in zip(tenancy_records, cluster_records):
        # Exact equality on every field the cluster record carries: the
        # tenancy layer must push the same events through the same code.
        assert (
            a.rid,
            a.key,
            a.shard,
            a.arrival_ns,
            a.attempts,
            a.retries,
            a.hedged,
            a.completed,
            a.failed,
            a.start_ns,
            a.finish_ns,
            a.replica,
            a.core,
        ) == (
            b.rid,
            b.key,
            b.shard,
            b.arrival_ns,
            b.attempts,
            b.retries,
            b.hedged,
            b.completed,
            b.failed,
            b.start_ns,
            b.finish_ns,
            b.replica,
            b.core,
        )
        assert not a.shed


class TestDegenerateByteIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_single_shard_fault_free(self, keys, seed, engine):
        topology = TopologySpec(n_shards=1, n_replicas=1, n_cores=2)
        spec = single_tenant_spec(
            rate_per_sec=RATE, n_requests=N_REQ, seed=seed, topology=topology
        )
        result = simulate_scenario(
            spec, services(1), keys,
            shard_map=ShardMap.from_keys(keys, 1),
        )
        direct = direct_run(
            keys, seed, topology, RouterPolicy(), None, None
        )
        assert_records_identical(result.cluster.records, direct.records)
        assert result.cluster.makespan_ns == direct.makespan_ns
        assert result.cluster.latencies_ns == direct.latencies_ns
        assert result.summary() == direct.summary()

    def test_sharded_replicated_topology(self, keys, engine):
        topology = TopologySpec(n_shards=4, n_replicas=2, n_cores=2)
        spec = single_tenant_spec(
            rate_per_sec=RATE, n_requests=N_REQ, seed=3, topology=topology
        )
        result = simulate_scenario(spec, services(4), keys)
        direct = direct_run(keys, 3, topology, RouterPolicy(), None, None)
        assert_records_identical(result.cluster.records, direct.records)
        assert result.summary() == direct.summary()
        assert result.cluster.max_queue_depth == direct.max_queue_depth
        only = result.tenants[0]
        assert only.requests == N_REQ
        assert only.completed == direct.completed
        assert only.shed == 0
        assert sorted(only.latencies_ns) == sorted(direct.latencies_ns)

    def test_with_policy_and_faults(self, keys, engine):
        """The identity survives retries, hedging and fault injection --
        the tenancy layer adds tenant identity, not behaviour."""
        topology = TopologySpec(n_shards=2, n_replicas=2, n_cores=2)
        span = N_REQ / RATE * 1e9
        horizon = 1.5 * span
        policy = RouterPolicy(
            hedge_after_ns=span / 100.0,
            backoff_base_ns=span / 50.0,
            backoff_cap_ns=span / 5.0,
        )
        faults = FaultConfig(
            crash_mttf_ns=span / 2.0,
            crash_mttr_ns=span / 10.0,
            slow_mttf_ns=span / 2.0,
            slow_mttr_ns=span / 8.0,
            slow_factor=6.0,
            seed=5,
        )
        spec = single_tenant_spec(
            rate_per_sec=RATE,
            n_requests=N_REQ,
            seed=5,
            topology=topology,
            policy=PolicySpec.from_router_policy(policy),
            faults=FaultSpec.from_fault_config(faults),
            fault_horizon_ns=horizon,
        )
        result = simulate_scenario(spec, services(2), keys)
        direct = direct_run(keys, 5, topology, policy, faults, horizon)
        assert direct.crashes > 0 or direct.slow_events > 0
        assert_records_identical(result.cluster.records, direct.records)
        assert result.cluster.total_retries == direct.total_retries
        assert result.cluster.total_hedges == direct.total_hedges
        assert result.cluster.fault_events == direct.fault_events
        assert result.summary() == direct.summary()

    def test_identity_breaks_with_admission(self, keys, engine):
        """Sanity: admission control is the one thing allowed to
        diverge -- a tight gold threshold changes the run."""
        topology = TopologySpec(n_shards=1, n_replicas=1, n_cores=1)
        spec = single_tenant_spec(
            rate_per_sec=20.0 * RATE,
            n_requests=N_REQ,
            seed=0,
            topology=topology,
        ).with_admission(AdmissionSpec(enabled=True, gold_depth=1))
        result = simulate_scenario(
            spec, services(1), keys,
            shard_map=ShardMap.from_keys(keys, 1),
        )
        assert result.total_shed > 0


class TestCrossEngineByteIdentity:
    """The engines must agree with each other through the tenancy
    layer, admission control included: shedding decisions read queue
    state, so identical shed sets prove identical event interleaving."""

    def run_under(self, spec, keys, n_shards, monkeypatch, engine_name):
        monkeypatch.setenv("REPRO_SERVE_ENGINE", engine_name)
        return simulate_scenario(
            spec, services(n_shards), keys,
            shard_map=ShardMap.from_keys(keys, n_shards),
        )

    def test_multi_tenant_run(self, keys, monkeypatch):
        topology = TopologySpec(n_shards=2, n_replicas=2, n_cores=2)
        spec = single_tenant_spec(
            rate_per_sec=RATE, n_requests=N_REQ, seed=4, topology=topology
        )
        a = self.run_under(spec, keys, 2, monkeypatch, "event")
        b = self.run_under(spec, keys, 2, monkeypatch, "fast")
        assert_records_identical(a.cluster.records, b.cluster.records)
        assert a.trace == b.trace
        assert a.summary() == b.summary()

    def test_admission_control_sheds_identically(self, keys, monkeypatch):
        topology = TopologySpec(n_shards=1, n_replicas=1, n_cores=1)
        spec = single_tenant_spec(
            rate_per_sec=20.0 * RATE,
            n_requests=N_REQ,
            seed=0,
            topology=topology,
        ).with_admission(AdmissionSpec(enabled=True, gold_depth=1))
        a = self.run_under(spec, keys, 1, monkeypatch, "event")
        b = self.run_under(spec, keys, 1, monkeypatch, "fast")
        assert a.total_shed > 0
        assert a.total_shed == b.total_shed
        assert [r.rid for r in a.cluster.records if r.shed] == [
            r.rid for r in b.cluster.records if r.shed
        ]
        assert [
            (r.rid, r.arrival_ns, r.start_ns, r.finish_ns, r.shed)
            for r in a.cluster.records
        ] == [
            (r.rid, r.arrival_ns, r.start_ns, r.finish_ns, r.shed)
            for r in b.cluster.records
        ]
        assert a.summary() == b.summary()


class TestTraceReplayIdentity:
    def test_serialized_trace_replays_byte_identically(self, keys, tmp_path, engine):
        spec = single_tenant_spec(
            rate_per_sec=RATE,
            n_requests=N_REQ,
            seed=9,
            topology=TopologySpec(n_shards=4, n_replicas=2, n_cores=2),
        )
        shard_map = ShardMap.from_keys(keys, 4)
        first = simulate_scenario(
            spec, services(4), keys, shard_map=shard_map
        )
        path = tmp_path / "run.trace.json"
        first.trace.save(path)
        reloaded = TenantTrace.load(path)
        assert reloaded == first.trace
        assert reloaded.content_key() == first.trace.content_key()
        replayed = replay_trace(
            spec, reloaded, services(4), shard_map=shard_map
        )
        assert_records_identical(
            replayed.cluster.records, first.cluster.records
        )
        assert replayed.summary() == first.summary()

    def test_spec_json_round_trip_reruns_identically(self, keys):
        from repro.serve.scenario import ScenarioSpec

        spec = single_tenant_spec(
            rate_per_sec=RATE, n_requests=N_REQ, seed=2,
            topology=TopologySpec(n_shards=2, n_replicas=2, n_cores=2),
        )
        again = ScenarioSpec.from_json(spec.to_json())
        shard_map = ShardMap.from_keys(keys, 2)
        a = simulate_scenario(spec, services(2), keys, shard_map=shard_map)
        b = simulate_scenario(again, services(2), keys, shard_map=shard_map)
        assert a.trace == b.trace
        assert_records_identical(a.cluster.records, b.cluster.records)
        assert a.summary() == b.summary()


@pytest.fixture(autouse=True)
def _isolate_measurement_caches():
    common.set_active_cache(None)
    common.clear_caches()
    yield
    common.set_active_cache(None)
    common.clear_caches()


@pytest.fixture(scope="module")
def settings():
    return BenchSettings(
        n_keys=6_000, n_lookups=40, warmup=20, max_configs=2
    )


def fresh_report(settings, jobs: int, cache=None):
    """Recompute the per-shard grid at ``jobs`` workers, then format."""
    common.clear_caches()
    cells = ext_tenants.cells(settings)
    assert cells
    _, stats = run_cells(cells, jobs=jobs, cache=cache)
    return ext_tenants.run(settings), stats


@pytest.mark.slow
class TestReportDeterminism:
    def test_serial_equals_jobs2(self, settings):
        serial, serial_stats = fresh_report(settings, jobs=1)
        parallel, parallel_stats = fresh_report(settings, jobs=2)
        assert serial_stats.executed > 0
        assert parallel_stats.executed == serial_stats.executed
        assert serial == parallel

    def test_cache_replay_is_identical(self, settings, tmp_path):
        cache = MeasurementCache(str(tmp_path / "cache"))
        first, first_stats = fresh_report(settings, jobs=2, cache=cache)
        assert first_stats.executed > 0
        second, second_stats = fresh_report(settings, jobs=1, cache=cache)
        assert second_stats.executed == 0
        assert second_stats.cache_hits == second_stats.unique_cells
        assert first == second

    def test_report_structure(self, settings):
        report, _ = fresh_report(settings, jobs=1)
        for ds_name in ("amzn", "osm"):
            assert f"mixed-tenant day, {ds_name}" in report
            assert f"flash crowd vs admission control, {ds_name}" in report
            assert f"record-replay reproducibility, {ds_name}" in report
        # The headline claim: with admission on, gold meets its SLO and
        # bronze absorbs the rejections; off, gold's p99 is destroyed.
        assert "NO" in report
        assert "yes" in report
        assert "replay identical" in report
