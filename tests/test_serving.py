"""Unit tests for the repro.serve subsystem (arrivals, core, selector)."""

import pytest

from repro.memsim.counters import PerfCountersF
from repro.memsim.costmodel import XEON_GOLD_6230
from repro.serve import (
    LatencySummary,
    MachineModel,
    ServiceModel,
    bursty_arrivals,
    poisson_arrivals,
    select_under_slo,
    service_time_ns,
    simulate_closed_loop,
    simulate_open_loop,
    summarize,
    summarize_result,
    think_times_ns,
    throughput,
)


def counters(instructions=50, llc_misses=3.0, branch_misses=1.0):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=branch_misses,
        llc_misses=llc_misses,
        l1_hits=4.0,
    )


class FakeMeasurement:
    """Duck-typed stand-in for repro.bench.harness.Measurement."""

    def __init__(self, name="X", size_bytes=1 << 20, **counter_kwargs):
        self.index = name
        self.config = {}
        self.size_bytes = size_bytes
        self.counters = counters(**counter_kwargs)
        self.latency_ns = XEON_GOLD_6230.latency_ns(self.counters)


class TestArrivals:
    def test_poisson_deterministic_and_sorted(self):
        a = poisson_arrivals(1e6, 500, seed=7)
        b = poisson_arrivals(1e6, 500, seed=7)
        assert a == b
        assert a == sorted(a)
        assert poisson_arrivals(1e6, 500, seed=8) != a

    def test_poisson_rate_scaling_is_exact(self):
        """Doubling the rate halves every timestamp (same gap sequence)."""
        slow = poisson_arrivals(1e6, 200, seed=3)
        fast = poisson_arrivals(2e6, 200, seed=3)
        for s, f in zip(slow, fast):
            assert f == pytest.approx(s / 2.0, rel=1e-12)

    def test_poisson_mean_gap_near_rate(self):
        a = poisson_arrivals(1e6, 5_000, seed=0)
        mean_gap = a[-1] / len(a)
        assert mean_gap == pytest.approx(1e3, rel=0.1)  # 1e9/1e6 ns

    def test_bursty_mean_rate_preserved(self):
        a = bursty_arrivals(1e6, 5_000, seed=0)
        mean_gap = a[-1] / len(a)
        assert mean_gap == pytest.approx(1e3, rel=0.15)

    def test_bursty_is_burstier_than_poisson(self):
        """Squared coefficient of variation of gaps exceeds Poisson's."""
        import statistics

        def cv2(times):
            gaps = [b - a for a, b in zip(times, times[1:])]
            mean = statistics.fmean(gaps)
            return statistics.pvariance(gaps) / (mean * mean)

        p = poisson_arrivals(1e6, 4_000, seed=1)
        b = bursty_arrivals(1e6, 4_000, seed=1)
        assert cv2(b) > cv2(p)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10, seed=0)
        with pytest.raises(ValueError):
            poisson_arrivals(1e6, 0, seed=0)
        with pytest.raises(ValueError):
            bursty_arrivals(1e6, 10, seed=0, burst_factor=1.0)
        with pytest.raises(ValueError):
            bursty_arrivals(1e6, 10, seed=0, burst_fraction=1.0)
        with pytest.raises(ValueError):
            think_times_ns(-1.0, 10, seed=0)

    def test_zero_think_time(self):
        assert think_times_ns(0.0, 5, seed=0) == [0.0] * 5


class TestContentionServiceTime:
    def test_single_core_equals_uncontended_latency(self):
        c = counters(llc_misses=0.0)
        lat = XEON_GOLD_6230.latency_ns(c)
        assert service_time_ns(c, 1) == pytest.approx(lat)

    def test_increasing_in_busy_cores(self):
        c = counters(llc_misses=4.0)
        times = [service_time_ns(c, k) for k in (1, 2, 4, 8, 16)]
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_consistent_with_figure16_steady_state(self):
        """k cores at service time s(k) sustain throughput(m, k)."""
        m = FakeMeasurement()
        machine = MachineModel()
        for k in (1, 4, 20):
            s_ns = service_time_ns(m.counters, k, machine=machine)
            steady = k / (s_ns * 1e-9)
            expected = throughput(m, k, machine=machine).lookups_per_sec
            assert steady == pytest.approx(expected, rel=1e-9)

    def test_zero_misses_no_inflation(self):
        c = counters(llc_misses=0.0)
        assert service_time_ns(c, 1) == service_time_ns(c, 16)

    def test_requires_positive_busy_cores(self):
        with pytest.raises(ValueError):
            service_time_ns(counters(), 0)


class TestEventLoop:
    def test_unloaded_requests_see_pure_service_time(self):
        """Arrivals far apart: no queueing, latency == 1-core service."""
        svc = ServiceModel(counters())
        base = svc.service_ns(1)
        arrivals = [i * 100 * base for i in range(20)]
        result = simulate_open_loop(svc, arrivals, n_cores=2)
        for lat in result.latencies_ns:
            assert lat == pytest.approx(base)
        assert result.total_steals == 0

    def test_single_core_fifo_wait(self):
        """Two simultaneous arrivals on one core: second waits for first."""
        svc = ServiceModel(counters(llc_misses=0.0))
        s = svc.service_ns(1)
        result = simulate_open_loop(svc, [0.0, 0.0], n_cores=1)
        first, second = result.requests
        assert first.latency_ns == pytest.approx(s)
        assert second.start_ns == pytest.approx(first.finish_ns)
        assert second.latency_ns == pytest.approx(2 * s)

    def test_simultaneous_arrivals_spread_across_cores(self):
        svc = ServiceModel(counters())
        result = simulate_open_loop(svc, [0.0, 0.0, 0.0, 0.0], n_cores=4)
        assert sorted(r.core for r in result.requests) == [0, 1, 2, 3]

    def test_contention_slows_concurrent_service(self):
        svc = ServiceModel(counters(llc_misses=6.0))
        alone = simulate_open_loop(svc, [0.0], n_cores=4)
        together = simulate_open_loop(svc, [0.0] * 4, n_cores=4)
        assert max(together.latencies_ns) > alone.latencies_ns[0]

    def test_results_in_request_order(self):
        svc = ServiceModel(counters())
        arrivals = poisson_arrivals(5e6, 300, seed=2)
        result = simulate_open_loop(svc, arrivals, n_cores=2)
        assert [r.rid for r in result.requests] == list(range(300))

    def test_deterministic_across_runs(self):
        svc = ServiceModel(counters())
        arrivals = poisson_arrivals(8e6, 500, seed=4)
        a = simulate_open_loop(svc, arrivals, n_cores=3)
        b = simulate_open_loop(svc, arrivals, n_cores=3)
        assert a.latencies_ns == b.latencies_ns
        assert [r.core for r in a.requests] == [r.core for r in b.requests]

    def test_work_stealing_occurs_at_moderate_load(self):
        """Steals need a queue imbalance: one core idle while another has
        a backlog -- which happens at moderate load, not overload."""
        m = FakeMeasurement(llc_misses=5.0)
        cap = throughput(m, 4).lookups_per_sec
        svc = ServiceModel(m.counters)
        arrivals = poisson_arrivals(0.8 * cap, 800, seed=5)
        result = simulate_open_loop(svc, arrivals, n_cores=4)
        assert result.total_steals > 0

    def test_closed_loop_saturates_cores(self):
        """Zero think time, clients > cores: throughput ~ steady state."""
        m = FakeMeasurement()
        svc = ServiceModel(m.counters)
        n_cores = 4
        result = simulate_closed_loop(
            svc, n_clients=8, n_requests=2_000, mean_think_ns=0.0,
            seed=0, n_cores=n_cores,
        )
        expected = throughput(m, n_cores).lookups_per_sec
        assert result.throughput_per_sec == pytest.approx(expected, rel=0.05)

    def test_closed_loop_issues_exactly_n_requests(self):
        svc = ServiceModel(counters())
        result = simulate_closed_loop(
            svc, n_clients=3, n_requests=100, mean_think_ns=200.0,
            seed=1, n_cores=2,
        )
        assert len(result.requests) == 100

    def test_invalid_core_and_client_counts(self):
        svc = ServiceModel(counters())
        with pytest.raises(ValueError):
            simulate_open_loop(svc, [0.0], n_cores=0)
        with pytest.raises(ValueError):
            simulate_closed_loop(
                svc, n_clients=0, n_requests=5, mean_think_ns=0.0,
                seed=0, n_cores=1,
            )


class TestMetrics:
    def test_summary_of_known_trace(self):
        lat = [float(i) for i in range(1, 101)]  # 1..100
        s = summarize(lat, throughput_per_sec=123.0)
        assert s.n == 100
        assert s.mean_ns == pytest.approx(50.5)
        assert s.p50_ns == pytest.approx(50.5)
        assert s.p99_ns == pytest.approx(99.01)
        assert s.max_ns == 100.0
        assert s.throughput_per_sec == 123.0
        assert s.meets(100.0) and not s.meets(50.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summarize_result_matches_summarize(self):
        svc = ServiceModel(counters())
        result = simulate_open_loop(
            svc, poisson_arrivals(5e6, 200, seed=9), n_cores=2
        )
        assert summarize_result(result) == summarize(
            result.latencies_ns, result.throughput_per_sec
        )


class TestSelector:
    def fleet(self):
        # Cheap-but-slow, expensive-but-fast, and mid.
        return [
            FakeMeasurement("Slow", size_bytes=1_000, llc_misses=9.0,
                            instructions=300),
            FakeMeasurement("Fast", size_bytes=1_000_000, llc_misses=0.5,
                            instructions=20),
            FakeMeasurement("Mid", size_bytes=10_000, llc_misses=2.0,
                            instructions=60),
        ]

    def test_picks_cheapest_meeting_slo(self):
        fleet = self.fleet()
        rate = 0.5 * throughput(fleet[2], 4).lookups_per_sec
        slo = 3.0 * fleet[2].latency_ns
        sel = select_under_slo(
            fleet, offered_per_sec=rate, p99_slo_ns=slo,
            n_requests=800, seed=0, n_cores=4,
        )
        assert sel.chosen is not None
        assert sel.chosen.index == "Mid"
        eligible = {c.index for c in sel.eligible()}
        assert "Fast" in eligible  # meets SLO but costs more memory

    def test_memory_budget_excludes_large_indexes(self):
        fleet = self.fleet()
        rate = 0.3 * throughput(fleet[1], 4).lookups_per_sec
        sel = select_under_slo(
            fleet, offered_per_sec=rate,
            p99_slo_ns=1.5 * fleet[1].latency_ns,
            memory_budget_bytes=100_000,
            n_requests=800, seed=0, n_cores=4,
        )
        assert all(c.index != "Fast" for c in sel.eligible())

    def test_impossible_slo_selects_none(self):
        fleet = self.fleet()
        sel = select_under_slo(
            fleet, offered_per_sec=1e6, p99_slo_ns=1.0,
            n_requests=400, seed=0, n_cores=4,
        )
        assert sel.chosen is None
        assert sel.eligible() == []

    def test_deterministic(self):
        fleet = self.fleet()
        kwargs = dict(
            offered_per_sec=2e6, p99_slo_ns=2_000.0,
            n_requests=600, seed=3, n_cores=4,
        )
        a = select_under_slo(fleet, **kwargs)
        b = select_under_slo(fleet, **kwargs)
        assert a.chosen == b.chosen
        assert a.candidates == b.candidates

    def test_boundary_semantics(self):
        """A candidate exactly at the p99 SLO and exactly at the memory
        budget is eligible: both checks are inclusive (<=).

        This pins the contract documented on ``Selection._fits`` -- an
        SLO of "p99 within 1 ms" admits 1 ms, and a budget admits a
        footprint that exactly fills it.  Regression guard against
        accidentally tightening either comparison to strict inequality.
        """
        from repro.serve.metrics import LatencySummary
        from repro.serve.selector import Candidate, selection_from_candidates

        p99 = 750.0
        size = 4_096
        summary = LatencySummary(
            n=100, mean_ns=400.0, p50_ns=380.0, p95_ns=600.0,
            p99_ns=p99, p999_ns=900.0, max_ns=1_000.0,
            throughput_per_sec=1e6,
        )
        at_boundary = Candidate(
            index="Edge", config={}, size_bytes=size,
            saturation_per_sec=1e6, summary=summary,
        )
        sel = selection_from_candidates(
            [at_boundary],
            offered_per_sec=1e6,
            p99_slo_ns=p99,  # exactly at the SLO
            memory_budget_bytes=float(size),  # exactly at the budget
        )
        assert sel.eligible() == [at_boundary]
        assert sel.chosen == at_boundary
        # One ulp past either boundary is ineligible.
        import math

        over_slo = selection_from_candidates(
            [at_boundary], 1e6, math.nextafter(p99, 0.0), float(size)
        )
        assert over_slo.chosen is None
        over_budget = selection_from_candidates(
            [at_boundary], 1e6, p99, math.nextafter(size, 0.0)
        )
        assert over_budget.chosen is None

    def test_candidate_summaries_are_latency_summaries(self):
        fleet = self.fleet()
        sel = select_under_slo(
            fleet, offered_per_sec=1e6, p99_slo_ns=1e9,
            n_requests=300, seed=0, n_cores=2,
        )
        for c in sel.candidates:
            assert isinstance(c.summary, LatencySummary)
            assert c.saturation_per_sec > 0
