"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_dataset, make_workload
from repro.memsim import AddressSpace, TracedArray


@pytest.fixture(scope="session")
def amzn_small():
    return make_dataset("amzn", 5_000, seed=3)


@pytest.fixture(scope="session")
def osm_small():
    return make_dataset("osm", 5_000, seed=3)


@pytest.fixture(scope="session")
def all_datasets_small():
    return {
        name: make_dataset(name, 4_000, seed=5)
        for name in ("amzn", "face", "osm", "wiki")
    }


@pytest.fixture()
def amzn_workload(amzn_small):
    return make_workload(amzn_small, 400, seed=11, mode="mixed")


@pytest.fixture()
def traced_keys(amzn_small):
    """(space, data TracedArray) pair over the small amzn dataset."""
    space = AddressSpace()
    data = TracedArray.allocate(space, amzn_small.keys, name="data")
    return space, data


def build(name, dataset, **config):
    """Helper: build an index over a dataset in a fresh space."""
    from repro.core import make_index

    space = AddressSpace()
    data = TracedArray.allocate(space, dataset.keys, name="data")
    return make_index(name, **config).build(data, space)


@pytest.fixture()
def extreme_probe_keys(amzn_small):
    keys = amzn_small.keys
    return [
        0,
        1,
        int(keys[0]) - 1,
        int(keys[0]),
        int(keys[0]) + 1,
        int(keys[len(keys) // 2]),
        int(keys[-1]) - 1,
        int(keys[-1]),
        int(keys[-1]) + 1,
        2**63,
        2**64 - 1,
    ]
