"""Metrics registry: instruments, snapshots, cross-process merge."""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry, get_registry


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        assert reg.counter("a.b").value == 5

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3)
        g.set_max(2)
        assert g.value == 3
        g.set_max(9)
        assert g.value == 9

    def test_histogram_stats_and_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("wall")
        for v in (0, 1, 2, 3, 1024):
            h.observe(v)
        assert h.count == 5
        assert h.total == 1030
        assert h.min == 0 and h.max == 1024
        assert h.mean == 206.0
        # bucket i counts [2**(i-1), 2**i): 0->b0, 1->b1, 2,3->b2, 1024->b11
        assert h.buckets == {0: 1, 1: 1, 2: 2, 11: 1}

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.names() == ["x"]


class TestSnapshot:
    def test_snapshot_is_json_able_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(10)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["buckets"] == {"4": 1}

    def test_merge_snapshot_folds_worker_registry(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(3)
        worker.gauge("g").set(7)
        worker.histogram("h").observe(4)
        worker.histogram("h").observe(100)

        parent = MetricsRegistry()
        parent.counter("c").inc(1)
        parent.gauge("g").set(5)
        parent.histogram("h").observe(50)
        parent.merge_snapshot(json.loads(json.dumps(worker.snapshot())))

        snap = parent.snapshot()
        assert snap["counters"]["c"] == 4  # counters add
        assert snap["gauges"]["g"] == 7  # gauges keep the max
        h = snap["histograms"]["h"]
        assert h["count"] == 3
        assert h["sum"] == 154
        assert h["min"] == 4 and h["max"] == 100

    def test_reset_empties(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
