"""Property and unit tests for the ``fast`` serving engine.

The engine's contract is *byte identity*: every result it produces must
equal the reference event loop's result under exact float ``==``, with
no tolerance.  The hypothesis suites below throw randomized gap/service
configurations at the Lindley kernel (including adversarial equal-time
ties, which exercise the sequential-repair path), check that
:func:`kernel_applies` is sound (never claims a configuration it cannot
reproduce), and pin the :class:`SealedEventQueue` to plain ``heapq``
order.  A companion suite pins the vectorized percentile path of
:mod:`repro.bench.stats` to the pure-Python interpolation it replaced.
"""

from __future__ import annotations

import heapq
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.stats import TAIL_PERCENTILES, percentile, percentiles
from repro.memsim.counters import PerfCountersF
from repro.serve.arrivals import bursty_arrivals, poisson_arrivals
from repro.serve.core import (
    ServiceModel,
    simulate_closed_loop,
    simulate_open_loop,
)
from repro.serve.fastsim import (
    SERVE_ENGINE_NAMES,
    SealedEventQueue,
    default_serve_engine_name,
    kernel_applies,
    lindley_open_loop,
    resolve_serve_engine,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

#: Non-negative inter-arrival gaps; zeros create back-to-back arrivals.
gaps = st.lists(
    st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
    min_size=1,
    max_size=200,
)

#: Gaps quantized to multiples of 64 ns: with service times also scaled,
#: arrivals frequently collide exactly with finish times, hammering the
#: tie-break rules (and the kernel's boundary-repair path).
tie_gaps = st.lists(
    st.integers(min_value=0, max_value=8).map(lambda g: 64.0 * g),
    min_size=1,
    max_size=150,
)

#: Counter mixes spanning cheap to memory-bound lookups.
counter_values = st.fixed_dictionaries(
    {
        "instructions": st.floats(min_value=1.0, max_value=5_000.0),
        "llc_misses": st.floats(min_value=0.0, max_value=50.0),
        "l1_hits": st.floats(min_value=0.0, max_value=100.0),
        "branch_misses": st.floats(min_value=0.0, max_value=20.0),
    }
)


def arrivals_from_gaps(gap_list):
    out, t = [], 0.0
    for g in gap_list:
        t += g
        out.append(t)
    return out


def service_from(values) -> ServiceModel:
    return ServiceModel(PerfCountersF(**values))


def assert_results_identical(fast, event):
    __tracebackhide__ = True
    assert fast == event
    assert len(fast.requests) == len(event.requests)
    for a, b in zip(fast.requests, event.requests):
        assert (a.rid, a.arrival_ns, a.start_ns, a.finish_ns, a.core) == (
            b.rid,
            b.arrival_ns,
            b.start_ns,
            b.finish_ns,
            b.core,
        )
    assert fast.latencies_ns == event.latencies_ns
    assert fast.makespan_ns == event.makespan_ns
    assert fast.max_queue_depth == event.max_queue_depth
    assert fast.total_steals == event.total_steals
    assert fast.throughput_per_sec == event.throughput_per_sec


# ---------------------------------------------------------------------------
# the Lindley kernel
# ---------------------------------------------------------------------------


class TestLindleyKernelIdentity:
    @given(gaps=gaps, values=counter_values)
    @settings(max_examples=150, deadline=None)
    def test_random_streams_byte_identical(self, gaps, values):
        arrivals = arrivals_from_gaps(gaps)
        event = simulate_open_loop(
            service_from(values), arrivals, n_cores=1, engine="event"
        )
        fast = lindley_open_loop(service_from(values), arrivals, n_cores=1)
        assert fast is not None
        assert_results_identical(fast, event)

    @given(gaps=tie_gaps, scale=st.integers(min_value=1, max_value=6))
    @settings(max_examples=150, deadline=None)
    def test_equal_time_ties_byte_identical(self, gaps, scale):
        """Quantized gaps + quantized service: arrivals land exactly on
        finish times, so the boundary guess is wrong somewhere and the
        sequential repair must reproduce the loop's tie-break."""
        arrivals = arrivals_from_gaps(gaps)
        # instructions=64*scale with no memory traffic gives an integral
        # service time commensurate with the 64 ns gap grid.
        values = {"instructions": 64.0 * scale}
        event = simulate_open_loop(
            service_from(values), arrivals, n_cores=1, engine="event"
        )
        fast = lindley_open_loop(service_from(values), arrivals, n_cores=1)
        assert fast is not None
        assert_results_identical(fast, event)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("rate", [1e5, 2e6, 5e7])
    def test_seeded_arrival_processes(self, seed, rate):
        service = ServiceModel(PerfCountersF(instructions=400, llc_misses=2))
        for arrivals in (
            poisson_arrivals(rate, 600, seed),
            bursty_arrivals(rate, 600, seed),
        ):
            event = simulate_open_loop(
                service, arrivals, n_cores=1, engine="event"
            )
            fast = simulate_open_loop(
                service, arrivals, n_cores=1, engine="fast"
            )
            assert_results_identical(fast, event)

    def test_empty_stream(self):
        service = ServiceModel(PerfCountersF(instructions=100))
        result = lindley_open_loop(service, [], n_cores=1)
        assert result is not None
        assert result.requests == []
        assert result.makespan_ns == 0.0

    def test_repair_path_fires_on_drift_rounding(self, monkeypatch):
        """A constructed boundary-guess miss: with s=0.1, eight chained
        additions give 0.7999999999999999 while the guess's ``8*s`` is
        0.8, so an arrival at exactly 0.8 starts a busy period the
        drift guess calls queued -- the sequential repair must run and
        still match the event loop."""
        import repro.serve.fastsim as fastsim

        class FlatService:
            def service_ns(self, k):
                return 0.1

        calls = []
        real_repair = fastsim._sequential_repair

        def spy(*args, **kwargs):
            calls.append(args)
            return real_repair(*args, **kwargs)

        monkeypatch.setattr(fastsim, "_sequential_repair", spy)
        arrivals = [0.0] * 8 + [8 * 0.1]
        assert sum([0.1] * 8) < 8 * 0.1  # the rounding gap under test
        fast = lindley_open_loop(FlatService(), arrivals, n_cores=1)
        event = simulate_open_loop(
            FlatService(), arrivals, n_cores=1, engine="event"
        )
        assert calls, "the guess should have been wrong somewhere"
        assert_results_identical(fast, event)

    def test_kernel_result_eq_foreign_type(self):
        service = ServiceModel(PerfCountersF(instructions=100))
        result = lindley_open_loop(service, [1.0, 2.0], n_cores=1)
        assert result != object()
        assert not (result == object())


class TestKernelAppliesSoundness:
    """The fallback predicate may be conservative but never wrong: if it
    accepts a configuration, the kernel must reproduce the event loop."""

    def test_rejects_multi_core(self):
        service = ServiceModel(PerfCountersF(instructions=100))
        assert not kernel_applies(service, [1.0, 2.0], n_cores=2)
        assert lindley_open_loop(service, [1.0, 2.0], n_cores=2) is None

    def test_rejects_unsorted_arrivals(self):
        service = ServiceModel(PerfCountersF(instructions=100))
        assert not kernel_applies(service, [5.0, 1.0], n_cores=1)

    def test_rejects_non_finite_arrivals(self):
        service = ServiceModel(PerfCountersF(instructions=100))
        assert not kernel_applies(service, [1.0, float("inf")], n_cores=1)
        assert not kernel_applies(service, [float("nan")], n_cores=1)

    @given(gaps=gaps, values=counter_values)
    @settings(max_examples=60, deadline=None)
    def test_accepted_implies_identical(self, gaps, values):
        arrivals = arrivals_from_gaps(gaps)
        if not kernel_applies(service_from(values), arrivals, n_cores=1):
            return
        fast = lindley_open_loop(service_from(values), arrivals, n_cores=1)
        event = simulate_open_loop(
            service_from(values), arrivals, n_cores=1, engine="event"
        )
        assert_results_identical(fast, event)

    def test_fast_engine_falls_back_when_kernel_refuses(self):
        """engine='fast' on a multi-core run must transparently use the
        (sealed-queue) event loop and still be byte-identical."""
        service = ServiceModel(PerfCountersF(instructions=200, llc_misses=1))
        arrivals = poisson_arrivals(5e6, 500, seed=7)
        for n_cores in (2, 4):
            event = simulate_open_loop(
                service, arrivals, n_cores=n_cores, engine="event"
            )
            fast = simulate_open_loop(
                service, arrivals, n_cores=n_cores, engine="fast"
            )
            assert_results_identical(fast, event)

    def test_closed_loop_identical_across_engines(self):
        service = ServiceModel(PerfCountersF(instructions=300))
        kwargs = dict(
            n_clients=8,
            n_requests=400,
            mean_think_ns=100.0,
            seed=3,
            n_cores=2,
        )
        event = simulate_closed_loop(service, engine="event", **kwargs)
        fast = simulate_closed_loop(service, engine="fast", **kwargs)
        assert_results_identical(fast, event)


# ---------------------------------------------------------------------------
# the sealed event queue
# ---------------------------------------------------------------------------

events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=0,
    max_size=200,
)


class TestSealedEventQueue:
    @given(up_front=events, late=events)
    @settings(max_examples=100, deadline=None)
    def test_matches_heapq_order(self, up_front, late):
        """Batch-sorted up-front events interleaved with a side heap of
        late pushes pop in exactly heapq's (time, kind, seq) order."""
        sealed = SealedEventQueue()
        reference: list = []
        seq = 0
        for t, kind in up_front:
            sealed.push(t, kind, payload=("p", seq))
            heapq.heappush(reference, (t, kind, seq, ("p", seq)))
            seq += 1
        popped = []
        expected = []
        # Drain half, then push the late events mid-stream; the
        # reference heap follows the same pop/push schedule.
        drain_first = len(up_front) // 2
        for _ in range(drain_first):
            popped.append(sealed.pop())
            expected.append(heapq.heappop(reference))
        for t, kind in late:
            sealed.push(t, kind, payload=("p", seq))
            heapq.heappush(reference, (t, kind, seq, ("p", seq)))
            seq += 1
        while sealed:
            popped.append(sealed.pop())
            expected.append(heapq.heappop(reference))
        assert popped == expected
        assert not reference
        assert len(sealed) == 0 and not sealed

    def test_len_and_bool(self):
        q = SealedEventQueue()
        assert not q and len(q) == 0
        q.push(1.0, 0, None)
        q.push(0.5, 1, None)
        assert q and len(q) == 2
        assert q.pop()[0] == 0.5
        assert len(q) == 1


# ---------------------------------------------------------------------------
# engine selection
# ---------------------------------------------------------------------------


class TestEngineSelection:
    def test_default_is_event(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_ENGINE", raising=False)
        assert default_serve_engine_name() == "event"
        assert resolve_serve_engine(None) == "event"

    @pytest.mark.parametrize("name", SERVE_ENGINE_NAMES)
    def test_env_selects_engine(self, name, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_ENGINE", name)
        assert default_serve_engine_name() == name
        assert resolve_serve_engine(None) == name
        # An explicit argument wins over the environment.
        other = "event" if name == "fast" else "fast"
        assert resolve_serve_engine(other) == other

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown serving engine"):
            resolve_serve_engine("turbo")
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "turbo")
        with pytest.raises(ValueError, match="unknown serving engine"):
            default_serve_engine_name()


# ---------------------------------------------------------------------------
# vectorized percentiles (repro.bench.stats)
# ---------------------------------------------------------------------------


def _percentile_reference(values, q):
    """The pure-Python sorted-list interpolation the numpy path replaced."""
    xs = sorted(float(v) for v in values)
    n = len(xs)
    if n == 1:
        return xs[0]
    rank = (q / 100.0) * (n - 1)
    lo = math.floor(rank)
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return xs[lo] + (xs[hi] - xs[lo]) * frac


latency_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=400,
)


class TestPercentileParity:
    @given(values=latency_lists, q=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=200, deadline=None)
    def test_bitwise_equal_to_pure_python(self, values, q):
        assert percentile(values, q) == _percentile_reference(values, q)

    @given(values=latency_lists)
    @settings(max_examples=100, deadline=None)
    def test_tail_percentiles_share_one_sort(self, values):
        got = percentiles(values, TAIL_PERCENTILES)
        assert got == {
            q: _percentile_reference(values, q) for q in TAIL_PERCENTILES
        }

    def test_single_element(self):
        assert percentile([42.0], 99.9) == 42.0
