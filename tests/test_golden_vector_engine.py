"""The committed golden grids must pass unchanged under the vector engine.

Same end-to-end guarantee as ``test_golden_fast_engine.py``, one engine
further along: the vector engine's batched measure path (kernel-
synthesized event streams, compiled trace plans, replay memoization)
reproduces the exact pre-engine golden counters.  The measurement-cache
key still excludes the engine -- all engines are the same measurement --
so a cache entry written under any engine is valid under ``vector`` and
vice versa.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.cache import cache_key
from repro.bench.config import BenchSettings
from repro.bench.experiments import common, fig16_multithread
from test_golden_regression import GOLDEN, assert_matches_golden, cell_of

HERE = os.path.dirname(__file__)


@pytest.fixture(autouse=True)
def _isolated_memo():
    common.set_active_cache(None)
    common.clear_caches()
    yield
    common.clear_caches()


class TestGoldenGridUnderVectorEngine:
    @pytest.mark.parametrize(
        "record",
        GOLDEN,
        ids=[
            f"{r['index']}-{r['dataset']}-{r['key_bits']}bit" for r in GOLDEN
        ],
    )
    def test_explicit_vector_engine_matches_golden(self, record):
        assert_matches_golden(cell_of(record).run(engine="vector"), record)

    def test_env_selected_vector_engine_matches_golden(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "vector")
        record = GOLDEN[0]
        assert_matches_golden(cell_of(record).run(), record)

    def test_repeat_run_hits_replay_memo_and_matches(self):
        """Back-to-back runs reuse cached batches/plans/memos exactly."""
        record = GOLDEN[0]
        cell = cell_of(record)
        assert_matches_golden(cell.run(engine="vector"), record)
        assert_matches_golden(cell.run(engine="vector"), record)


class TestFig16GoldenUnderVectorEngine:
    def test_fig16_report_is_byte_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "vector")
        golden_path = os.path.join(HERE, "data", "golden_fig16.txt")
        with open(golden_path) as f:
            golden = f.read()
        settings = BenchSettings(
            n_keys=3_000,
            n_lookups=60,
            warmup=30,
            max_configs=2,
            datasets=["amzn", "osm"],
        )
        assert fig16_multithread.run(settings) == golden


class TestCacheKeyExcludesEngine:
    def test_key_fields_have_no_engine(self):
        fields = cell_of(GOLDEN[0]).key_fields()
        assert "engine" not in json.dumps(fields)

    @pytest.mark.parametrize("name", ["fast", "vector"])
    def test_cache_key_invariant_under_engine_env(self, monkeypatch, name):
        cell = cell_of(GOLDEN[0])
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "reference")
        key_ref = cache_key(cell)
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", name)
        assert cache_key(cell) == key_ref
