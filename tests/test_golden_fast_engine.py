"""The committed golden grids must pass unchanged under the fast engine.

This is the tentpole's end-to-end guarantee: selecting the fast memsim
engine (explicitly or via ``REPRO_MEMSIM_ENGINE``) reproduces the exact
pre-engine golden counters -- which is also why the measurement-cache
key deliberately excludes the engine: both engines produce the same
measurement, so a cache entry written under one is valid under the
other.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.cache import cache_key
from repro.bench.config import BenchSettings
from repro.bench.experiments import common, fig16_multithread
from test_golden_regression import GOLDEN, assert_matches_golden, cell_of

HERE = os.path.dirname(__file__)


@pytest.fixture(autouse=True)
def _isolated_memo():
    common.set_active_cache(None)
    common.clear_caches()
    yield
    common.clear_caches()


class TestGoldenGridUnderFastEngine:
    @pytest.mark.parametrize(
        "record",
        GOLDEN,
        ids=[
            f"{r['index']}-{r['dataset']}-{r['key_bits']}bit" for r in GOLDEN
        ],
    )
    def test_explicit_fast_engine_matches_golden(self, record):
        assert_matches_golden(cell_of(record).run(engine="fast"), record)

    def test_env_selected_fast_engine_matches_golden(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "fast")
        record = GOLDEN[0]
        assert_matches_golden(cell_of(record).run(), record)


class TestFig16GoldenUnderFastEngine:
    def test_fig16_report_is_byte_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "fast")
        golden_path = os.path.join(HERE, "data", "golden_fig16.txt")
        with open(golden_path) as f:
            golden = f.read()
        settings = BenchSettings(
            n_keys=3_000,
            n_lookups=60,
            warmup=30,
            max_configs=2,
            datasets=["amzn", "osm"],
        )
        assert fig16_multithread.run(settings) == golden


class TestCacheKeyExcludesEngine:
    def test_key_fields_have_no_engine(self):
        fields = cell_of(GOLDEN[0]).key_fields()
        assert "engine" not in json.dumps(fields)

    def test_cache_key_invariant_under_engine_env(self, monkeypatch):
        cell = cell_of(GOLDEN[0])
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "fast")
        key_fast = cache_key(cell)
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "reference")
        assert cache_key(cell) == key_fast
