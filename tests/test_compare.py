"""Measurement baseline comparison tool."""

import json

import pytest

from repro.bench.compare import compare_files, format_comparison, main


def write_records(path, records):
    with open(path, "w") as f:
        json.dump(records, f)


def record(index="RMI", dataset="amzn", latency=200.0, config="{}"):
    return {
        "index": index,
        "dataset": dataset,
        "config": config,
        "search": "binary",
        "warm": True,
        "key_bits": 64,
        "latency_ns": latency,
    }


class TestCompareFiles:
    def test_identical_is_clean(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_records(a, [record()])
        write_records(b, [record()])
        c = compare_files(a, b)
        assert c.clean
        assert c.unchanged == 1

    def test_detects_regression(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_records(a, [record(latency=200.0)])
        write_records(b, [record(latency=260.0)])
        c = compare_files(a, b, threshold=0.05)
        assert not c.clean
        assert len(c.regressions) == 1
        assert c.regressions[0].ratio == pytest.approx(1.3)

    def test_detects_improvement(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_records(a, [record(latency=200.0)])
        write_records(b, [record(latency=150.0)])
        c = compare_files(a, b, threshold=0.05)
        assert c.clean
        assert len(c.improvements) == 1

    def test_threshold_tolerates_small_drift(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_records(a, [record(latency=200.0)])
        write_records(b, [record(latency=203.0)])
        c = compare_files(a, b, threshold=0.02)
        assert c.unchanged == 1

    def test_missing_config_not_clean(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_records(a, [record(), record(index="PGM")])
        write_records(b, [record()])
        c = compare_files(a, b)
        assert not c.clean
        assert len(c.only_in_baseline) == 1

    def test_new_config_is_clean(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_records(a, [record()])
        write_records(b, [record(), record(index="PGM")])
        c = compare_files(a, b)
        assert c.clean
        assert len(c.only_in_current) == 1

    def test_negative_threshold_rejected(self, tmp_path):
        a = str(tmp_path / "a.json")
        write_records(a, [record()])
        with pytest.raises(ValueError):
            compare_files(a, a, threshold=-1)


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_records(a, [record(latency=200.0)])
        write_records(b, [record(latency=400.0)])
        assert main([a, a]) == 0
        assert main([a, b]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out
        assert "slower" in out

    def test_format_mentions_counts(self):
        from repro.bench.compare import Comparison

        text = format_comparison(
            Comparison([], [], unchanged=7, only_in_baseline=[], only_in_current=[])
        )
        assert "7" in text and "clean" in text


class TestRealRoundtrip:
    def test_against_actual_measurements(self, tmp_path):
        """A real measurement dumped twice compares clean (determinism)."""
        from repro.bench.export import write_measurements
        from repro.bench.harness import measure_index
        from repro.datasets import make_dataset, make_workload

        ds = make_dataset("amzn", 2_500, seed=71)
        wl = make_workload(ds, 120, seed=72)
        m1 = measure_index(ds, wl, "RMI", {"branching": 64}, n_lookups=60)
        m2 = measure_index(ds, wl, "RMI", {"branching": 64}, n_lookups=60)
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_measurements(a, [m1])
        write_measurements(b, [m2])
        assert compare_files(a, b).clean
