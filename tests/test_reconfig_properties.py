"""Property tests for live reconfiguration (:mod:`repro.serve.reconfig`).

The contract the differential and determinism suites rest on:

* **Total, non-overlapping partition.**  Every :class:`ShardEpoch` --
  the initial one and every one a split or merge produces -- covers the
  whole key space with strictly-increasing bounds and unique owners, so
  ``shard_for`` maps every key to exactly one shard.
* **Split/merge round-trip.**  ``ShardMap.split`` is inverted by
  ``merge`` of the same shard, and the epoch a split+merge pair leaves
  behind owns the original ranges.
* **Epoch monotonicity.**  Versions on a run's epoch history are
  ``0, 1, 2, ...`` with non-decreasing install times.
* **Schedule determinism and horizon purity.**  Per the
  :mod:`repro.serve.faults` doctrine, :func:`reconfig_schedule` is a
  pure function of (spec, topology, horizon), and a shorter horizon's
  schedule is byte-identical to the prefix of a longer one's.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.counters import PerfCountersF
from repro.serve.arrivals import poisson_arrivals
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.core import ServiceModel
from repro.serve.reconfig import (
    AutoscaleSpec,
    MergeSpec,
    RebuildSpec,
    ReconfigSpec,
    ShardEpoch,
    SplitSpec,
    autoscale_decision,
    reconfig_schedule,
)
from repro.serve.router import RouterPolicy, ShardMap

_SEEDS = st.integers(min_value=0, max_value=2**31 - 1)

# Strictly increasing lower bounds with room to split every range.
_BOUNDS = st.lists(
    st.integers(min_value=0, max_value=2**40), min_size=1, max_size=6,
    unique=True,
).map(sorted)


def counters():
    return PerfCountersF(
        instructions=50, branch_misses=1.0, llc_misses=3.0, l1_hits=4.0
    )


def splittable(bounds):
    """Shard indices with a key strictly inside their range."""
    return [
        i
        for i in range(len(bounds) - 1)
        if bounds[i] + 1 < bounds[i + 1]
    ]


class TestPartition:
    @given(bounds=_BOUNDS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_split_preserves_total_partition(self, bounds, data):
        m = ShardMap(bounds)
        epoch = ShardEpoch(
            version=0,
            time_ns=0.0,
            bounds=tuple(m.lower_bounds),
            owners=tuple(range(m.n_shards)),
        )
        next_sid = m.n_shards
        # Apply a random chain of valid splits, maintaining the epoch
        # exactly as ReconfigRuntime does (new sim-shard id appended,
        # never renumbered).
        for _ in range(data.draw(st.integers(min_value=0, max_value=3))):
            cands = splittable(list(epoch.bounds))
            if not cands:
                break
            i = data.draw(st.sampled_from(cands))
            lo, hi = epoch.bounds[i], epoch.bounds[i + 1]
            at = data.draw(
                st.integers(min_value=lo + 1, max_value=hi - 1)
            )
            new_bounds = ShardMap(list(epoch.bounds)).split(i, at)
            owners = list(epoch.owners)
            owners.insert(i + 1, next_sid)
            next_sid += 1
            epoch = ShardEpoch(
                version=epoch.version + 1,
                time_ns=epoch.time_ns,
                bounds=tuple(new_bounds.lower_bounds),
                owners=tuple(owners),
            )
        # Totality + non-overlap: strictly increasing bounds, unique
        # owners, and every probe key resolves to exactly one range.
        assert list(epoch.bounds) == sorted(set(epoch.bounds))
        assert len(set(epoch.owners)) == len(epoch.owners)
        assert len(epoch.owners) == epoch.n_ranges
        probes = {epoch.bounds[0], epoch.bounds[-1], 0, 2**40}
        for b in epoch.bounds:
            probes.update((b, b - 1, b + 1))
        for key in probes:
            owner = epoch.shard_for(key)
            assert owner in epoch.owners
            i = epoch.owners.index(owner)
            lo = epoch.bounds[i]
            hi = epoch.bounds[i + 1] if i + 1 < epoch.n_ranges else None
            # Keys below the first bound route to range 0 (total map).
            if key >= epoch.bounds[0]:
                assert key >= lo and (hi is None or key < hi)

    @given(bounds=_BOUNDS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_split_then_merge_roundtrips(self, bounds, data):
        m = ShardMap(bounds)
        cands = splittable(bounds)
        if not cands:
            return
        i = data.draw(st.sampled_from(cands))
        at = data.draw(
            st.integers(
                min_value=bounds[i] + 1, max_value=bounds[i + 1] - 1
            )
        )
        assert m.split(i, at).merge(i) == m
        assert m.split(i, at) != m


class TestEpochMonotonicity:
    def run_with(self, spec, seed=3):
        cluster = Cluster(
            shard_map=ShardMap([0, 1000, 2000]),
            services=[ServiceModel(counters()) for _ in range(3)],
            n_replicas=2,
            n_cores=2,
            policy=RouterPolicy(),
            faults=None,
            reconfig=spec,
        )
        arrivals = poisson_arrivals(6e6, 300, seed=seed)
        keys = [((i * 37) % 3000) for i in range(300)]
        return simulate_cluster(cluster, arrivals, keys)

    def test_versions_strictly_monotone(self):
        span = 300 / 6e6 * 1e9
        spec = ReconfigSpec(
            splits=(SplitSpec(at_ns=0.2 * span, shard=0, at_key=500),),
            merges=(MergeSpec(at_ns=0.6 * span, shard=0),),
        )
        result = self.run_with(spec)
        versions = [e.version for e in result.epochs]
        times = [e.time_ns for e in result.epochs]
        assert versions == list(range(len(versions)))
        assert len(versions) == 3  # initial + split + merge
        assert times == sorted(times)
        # The merge undoes the split: final epoch owns the original map.
        assert result.epochs[-1].bounds == result.epochs[0].bounds
        assert result.epochs[-1].owners == result.epochs[0].owners


class TestScheduleDeterminism:
    def spec(self, span):
        return ReconfigSpec(
            splits=(SplitSpec(at_ns=0.25 * span, shard=0, at_key=7),),
            rebuilds=(
                RebuildSpec(
                    at_ns=0.5 * span,
                    shard=1,
                    replica=0,
                    build_ns=0.1 * span,
                ),
            ),
            autoscale=AutoscaleSpec(interval_ns=span / 10, up_depth=4),
        )

    @given(
        span=st.floats(min_value=1e3, max_value=1e9),
        frac=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_horizon_prefix_purity(self, span, frac):
        spec = self.spec(span)
        full = reconfig_schedule(spec, 4, 2, span)
        short = reconfig_schedule(spec, 4, 2, frac * span)
        assert full[: len(short)] == short
        assert all(ev.time_ns < frac * span for ev in short)

    @given(span=st.floats(min_value=1e3, max_value=1e9), seed=_SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_schedule_is_pure(self, span, seed):
        # No hidden state: two calls (and a rebuilt spec from JSON)
        # produce the identical event list.
        spec = self.spec(span)
        again = ReconfigSpec.from_json(spec.to_json())
        assert reconfig_schedule(spec, 4, 2, span) == reconfig_schedule(
            again, 4, 2, span
        )

    def test_schedule_sorted_and_filtered(self):
        spec = self.spec(1e6)
        events = reconfig_schedule(spec, 4, 2, 1e6)
        keyed = [(ev.time_ns,) for ev in events]
        assert keyed == sorted(keyed)
        assert all(0.0 <= ev.time_ns < 1e6 for ev in events)
        # Autoscale ticks at k * interval for k >= 1.
        ticks = [ev for ev in events if ev.kind == "autoscale"]
        assert len(ticks) == 9


class TestAutoscaleDecision:
    @given(
        backlog=st.integers(min_value=0, max_value=50),
        live=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_decision_bounded_and_pure(self, backlog, live):
        spec = AutoscaleSpec(
            interval_ns=1e3,
            up_depth=6,
            down_depth=0,
            min_replicas=2,
            max_replicas=4,
        )
        d = autoscale_decision(spec, backlog, None, live)
        assert d == autoscale_decision(spec, backlog, None, live)
        assert d in (-1, 0, 1)
        if d == 1:
            assert backlog >= 6 and live < 4
        if d == -1:
            assert backlog == 0 and live > 2

    def test_p99_trigger(self):
        spec = AutoscaleSpec(
            interval_ns=1e3, up_depth=100, up_p99_ns=500.0, max_replicas=4
        )
        assert autoscale_decision(spec, 0, 600.0, 2) == 1
        assert autoscale_decision(spec, 0, 400.0, 2) in (0, -1)
        assert autoscale_decision(spec, 0, None, 2) in (0, -1)


class TestRuntimeEdges:
    def run_with(self, spec, n=300, rate=6e6):
        cluster = Cluster(
            shard_map=ShardMap([0, 1000]),
            services=[ServiceModel(counters()) for _ in range(2)],
            n_replicas=2,
            n_cores=2,
            policy=RouterPolicy(),
            faults=None,
            reconfig=spec,
        )
        arrivals = poisson_arrivals(rate, n, seed=3)
        keys = [((i * 37) % 2000) for i in range(n)]
        return simulate_cluster(cluster, arrivals, keys)

    def test_p99_autoscale_trigger_scales_up(self):
        # An absurdly low p99 threshold: every tick looks overloaded, so
        # the latency-collection path drives the scale-ups.
        span = 300 / 6e6 * 1e9
        spec = ReconfigSpec(
            autoscale=AutoscaleSpec(
                interval_ns=span / 10,
                up_depth=10_000,
                up_p99_ns=1.0,
                min_replicas=2,
                max_replicas=3,
            )
        )
        result = self.run_with(spec)
        # The p99 path fires scale-ups (idle ticks may scale back down:
        # no completions since the last tick means p99 is unknown).
        assert any(d == 1 for _, _, d in result.scale_events)
        assert 4 <= result.live_replicas <= 6  # within [min, max] bounds

    def test_split_out_of_range_raises(self):
        span = 300 / 6e6 * 1e9
        spec = ReconfigSpec(
            splits=(SplitSpec(at_ns=0.2 * span, shard=5, at_key=500),)
        )
        with pytest.raises(ValueError, match="split targets"):
            self.run_with(spec)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            lambda: SplitSpec(at_ns=-1.0, shard=0, at_key=5),
            lambda: SplitSpec(at_ns=1.0, shard=-1, at_key=5),
            lambda: MergeSpec(at_ns=-1.0, shard=0),
            lambda: MergeSpec(at_ns=1.0, shard=-1),
            lambda: RebuildSpec(at_ns=-1.0, shard=0, replica=0, build_ns=1.0),
            lambda: RebuildSpec(at_ns=1.0, shard=-1, replica=0, build_ns=1.0),
            lambda: RebuildSpec(at_ns=1.0, shard=0, replica=0, build_ns=0.0),
            lambda: RebuildSpec(
                at_ns=1.0, shard=0, replica=0, build_ns=1.0, speedup=0.0
            ),
            lambda: AutoscaleSpec(interval_ns=0.0, up_depth=4),
            lambda: AutoscaleSpec(interval_ns=1.0, up_depth=0),
            lambda: AutoscaleSpec(interval_ns=1.0, up_depth=4, down_depth=4),
            lambda: AutoscaleSpec(interval_ns=1.0, up_depth=4, min_replicas=0),
            lambda: AutoscaleSpec(
                interval_ns=1.0, up_depth=4, min_replicas=3, max_replicas=2
            ),
            lambda: AutoscaleSpec(interval_ns=1.0, up_depth=4, up_p99_ns=0.0),
        ],
    )
    def test_bad_field_values_rejected(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_schema_mismatch_rejected(self):
        d = ReconfigSpec(merges=(MergeSpec(at_ns=1.0, shard=0),)).to_dict()
        d["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            ReconfigSpec.from_dict(d)

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            reconfig_schedule(ReconfigSpec(), 2, 2, 0.0)

    def test_epoch_validation_and_dict(self):
        with pytest.raises(ValueError):
            ShardEpoch(
                version=0, time_ns=0.0, bounds=(0, 10), owners=(0,)
            )
        with pytest.raises(ValueError):
            ShardEpoch(
                version=0, time_ns=0.0, bounds=(0, 10), owners=(1, 1)
            )
        e = ShardEpoch(
            version=2, time_ns=5.0, bounds=(0, 10), owners=(0, 3)
        )
        assert e.to_dict() == {
            "version": 2,
            "time_ns": 5.0,
            "bounds": [0, 10],
            "owners": [0, 3],
        }

    def test_merge_and_autoscale_roundtrip(self):
        spec = ReconfigSpec(
            merges=(MergeSpec(at_ns=3.0, shard=1),),
            autoscale=AutoscaleSpec(
                interval_ns=2.0, up_depth=4, up_p99_ns=900.0
            ),
        )
        again = ReconfigSpec.from_json(spec.to_json())
        assert again == spec
        assert again.autoscale.up_p99_ns == 900.0
    def test_split_at_boundary_rejected(self):
        m = ShardMap([0, 100])
        with pytest.raises(ValueError):
            m.split(0, 0)
        with pytest.raises(ValueError):
            m.split(0, 100)
        with pytest.raises(ValueError):
            m.merge(1)  # no right neighbour

    def test_schedule_rejects_bad_rebuild_target(self):
        spec = ReconfigSpec(
            rebuilds=(
                RebuildSpec(at_ns=10.0, shard=5, replica=0, build_ns=1.0),
            )
        )
        with pytest.raises(ValueError):
            reconfig_schedule(spec, 2, 2, 1e6)

    def test_roundtrip_and_content_key(self):
        span = 1e6
        spec = ReconfigSpec(
            splits=(SplitSpec(at_ns=0.2 * span, shard=0, at_key=42),),
            autoscale=AutoscaleSpec(interval_ns=span / 8, up_depth=6),
        )
        again = ReconfigSpec.from_json(spec.to_json())
        assert again == spec
        assert again.content_key() == spec.content_key()
        assert ReconfigSpec().enabled is False
        assert spec.enabled is True
