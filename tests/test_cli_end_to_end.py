"""End-to-end CLI: every experiment through the real entry point."""

import json

from repro.bench.__main__ import main


def test_all_experiments_tiny(tmp_path, capsys):
    """`--experiment all` runs every driver and saves artifacts."""
    measurements_path = str(tmp_path / "m.json")
    rc = main(
        [
            "--experiment",
            "all",
            "--quick",
            "--n-keys",
            "2000",
            "--n-lookups",
            "25",
            "--warmup",
            "15",
            "--max-configs",
            "2",
            "--datasets",
            "amzn",
            "--save-measurements",
            measurements_path,
            "--save-svg",
            str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    for marker in ("[table1]", "[fig7]", "[fig17]", "[ext3]", "[sec4.3]"):
        assert marker in out
    records = json.load(open(measurements_path))
    assert len(records) > 10
    assert (tmp_path / "pareto_amzn.svg").exists()
