"""Byte-identity tests for serving telemetry across engines and runners.

The hard bar from ``docs/observability.md``: telemetry is an *observer*.

* The ``event`` and ``fast`` engines produce byte-identical windowed
  aggregates and attempt traces -- on the vectorized Lindley-kernel
  path (1 core), the batch-sorted SealedEventQueue path (multi-core,
  closed-loop, cluster, tenancy), and everything in between;
* a degenerate 1-shard/1-replica no-fault cluster reports the *same*
  series as the equivalent open-loop run;
* attaching telemetry never perturbs the simulation results, and
  telemetry-off cache keys don't mention telemetry at all;
* sweep-task records carry the series through the JSON round trip and
  are identical serial vs ``jobs=2`` vs cross-engine cache replay.

Every comparison below is exact ``==`` -- no approx anywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.cache import SimResultCache, sim_key
from repro.memsim.counters import PerfCountersF
from repro.serve.arrivals import poisson_arrivals
from repro.serve.cluster import Cluster, simulate_cluster
from repro.serve.core import (
    ServiceModel,
    simulate_closed_loop,
    simulate_open_loop,
)
from repro.serve.faults import FaultConfig
from repro.serve.router import RouterPolicy, ShardMap, request_keys
from repro.serve.scenario import (
    AdmissionSpec,
    ArrivalSpec,
    ScenarioSpec,
    TenantSpec,
    TopologySpec,
)
from repro.serve.sweep import (
    clear_sim_results,
    cluster_task,
    freeze_telemetry,
    open_loop_task,
    run_sim_tasks,
)
from repro.serve.telemetry import TelemetryConfig, TimeSeries
from repro.serve.tenancy import simulate_scenario

RATE = 3e5
N_REQ = 400
SPAN_NS = N_REQ / RATE * 1e9
WINDOW_NS = SPAN_NS / 10.0


def counters(instructions=500):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=5.0,
        llc_misses=30.0,
        l1_hits=40.0,
    )


def service():
    return ServiceModel(counters())


def tel(traces=False, slo_p99_ns=None):
    return TelemetryConfig(
        window_ns=WINDOW_NS, slo_p99_ns=slo_p99_ns, traces=traces
    )


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_sim_results()
    yield
    clear_sim_results()


@pytest.fixture(scope="module")
def keys():
    raw = np.random.default_rng(0).integers(
        0, 2**40, size=6000, dtype=np.uint64
    )
    return np.unique(raw)


def assert_series_equal(a: TimeSeries, b: TimeSeries):
    assert a == b
    assert a.content_key() == b.content_key()
    assert a.to_json() == b.to_json()


class TestOpenLoopCrossEngine:
    """Event loop vs the vectorized Lindley kernel / sealed queue."""

    def run_both(self, n_cores, **tel_kwargs):
        arrivals = poisson_arrivals(RATE, N_REQ, seed=7)
        cfg = tel(**tel_kwargs)
        return [
            simulate_open_loop(
                service(), arrivals, n_cores, engine=engine, telemetry=cfg
            )
            for engine in ("event", "fast")
        ]

    def test_kernel_path_single_core(self):
        event, fast = self.run_both(1, traces=True, slo_p99_ns=9_000.0)
        assert_series_equal(event.telemetry, fast.telemetry)
        assert event.traces == fast.traces
        assert event.requests == fast.requests

    def test_sealed_queue_path_multi_core(self):
        event, fast = self.run_both(4, traces=True)
        assert_series_equal(event.telemetry, fast.telemetry)
        assert event.traces == fast.traces

    def test_closed_loop(self):
        results = [
            simulate_closed_loop(
                service(),
                n_clients=8,
                n_requests=N_REQ,
                mean_think_ns=500.0,
                seed=3,
                n_cores=2,
                engine=engine,
                telemetry=tel(traces=True),
            )
            for engine in ("event", "fast")
        ]
        assert_series_equal(results[0].telemetry, results[1].telemetry)
        assert results[0].traces == results[1].traces

    def test_telemetry_does_not_perturb_results(self):
        arrivals = poisson_arrivals(RATE, N_REQ, seed=7)
        for engine in ("event", "fast"):
            plain = simulate_open_loop(service(), arrivals, 2, engine=engine)
            observed = simulate_open_loop(
                service(), arrivals, 2, engine=engine, telemetry=tel(True)
            )
            assert observed.requests == plain.requests
            assert observed.max_queue_depth == plain.max_queue_depth
            assert observed.makespan_ns == plain.makespan_ns
            assert observed.total_steals == plain.total_steals


def faulty_cluster(keys, hedge_after_ns=None):
    """2x2 cluster with crash+slow faults (and optional hedging) tuned
    so retries, cancellations and -- when hedging -- hedges all fire."""
    shard_map = ShardMap.from_keys(keys, 2)
    policy = RouterPolicy(
        backoff_base_ns=SPAN_NS / 50.0,
        backoff_cap_ns=SPAN_NS / 5.0,
        hedge_after_ns=hedge_after_ns,
    )
    faults = FaultConfig(
        crash_mttf_ns=SPAN_NS / 2.0,
        crash_mttr_ns=SPAN_NS / 10.0,
        slow_mttf_ns=SPAN_NS / 2.0,
        slow_mttr_ns=SPAN_NS / 8.0,
        slow_factor=8.0,
        seed=11,
    )
    return Cluster(
        shard_map=shard_map,
        services=[service(), service()],
        n_replicas=2,
        n_cores=2,
        policy=policy,
        faults=faults,
    )


class TestClusterCrossEngine:
    def run_both(self, keys, hedge_after_ns=None):
        arrivals = poisson_arrivals(RATE, N_REQ, seed=5)
        lookup = request_keys(keys, N_REQ, seed=5)
        return [
            simulate_cluster(
                faulty_cluster(keys, hedge_after_ns),
                arrivals,
                lookup,
                fault_horizon_ns=1.5 * SPAN_NS,
                engine=engine,
                telemetry=tel(traces=True),
            )
            for engine in ("event", "fast")
        ]

    def test_faulted_cluster_series_and_traces(self, keys):
        event, fast = self.run_both(keys)
        assert_series_equal(event.telemetry, fast.telemetry)
        assert event.traces == fast.traces
        # The scenario actually exercises the fault machinery.
        ts = event.telemetry
        assert ts.retries > 0
        assert any(t.status != "completed" for t in event.traces)

    def test_hedged_cluster_series_and_traces(self, keys):
        event, fast = self.run_both(
            keys, hedge_after_ns=4.0 * service().service_ns(2)
        )
        assert_series_equal(event.telemetry, fast.telemetry)
        assert event.traces == fast.traces
        assert event.telemetry.hedges > 0
        assert any(t.cause == "hedge" for t in event.traces)

    def test_totals_telescope_to_cluster_result(self, keys):
        result, _ = self.run_both(keys)
        ts = result.telemetry
        assert ts.completed == result.completed
        assert ts.failed == result.failed
        assert ts.retries == result.total_retries
        assert ts.hedges == result.total_hedges
        assert ts.max_queue_depth == result.max_queue_depth

    def test_telemetry_does_not_perturb_results(self, keys):
        arrivals = poisson_arrivals(RATE, N_REQ, seed=5)
        lookup = request_keys(keys, N_REQ, seed=5)
        runs = [
            simulate_cluster(
                faulty_cluster(keys),
                arrivals,
                lookup,
                fault_horizon_ns=1.5 * SPAN_NS,
                telemetry=cfg,
            )
            for cfg in (None, tel(traces=True))
        ]
        assert runs[0].latencies_ns == runs[1].latencies_ns
        assert runs[0].completed == runs[1].completed
        assert runs[0].failed == runs[1].failed
        assert runs[0].total_retries == runs[1].total_retries
        assert runs[0].max_queue_depth == runs[1].max_queue_depth


class TestDegenerateClusterMatchesOpenLoop:
    """A 1x1 fault-free cluster IS the open loop -- telemetry included."""

    @pytest.mark.parametrize("engine", ["event", "fast"])
    def test_series_match(self, keys, engine):
        arrivals = poisson_arrivals(RATE, N_REQ, seed=9)
        open_result = simulate_open_loop(
            service(), arrivals, 2, engine=engine, telemetry=tel()
        )
        cluster = Cluster(
            shard_map=ShardMap.from_keys(keys, 1),
            services=[service()],
            n_replicas=1,
            n_cores=2,
        )
        cluster_result = simulate_cluster(
            cluster,
            arrivals,
            request_keys(keys, N_REQ, seed=9),
            engine=engine,
            telemetry=tel(),
        )
        assert_series_equal(open_result.telemetry, cluster_result.telemetry)


class TestTenancyCrossEngine:
    def spec(self):
        svc_ns = service().service_ns(1)
        rate = 0.9 * 1e9 / svc_ns
        return ScenarioSpec(
            name="pressure",
            tenants=(
                TenantSpec(
                    name="gold",
                    slo_class="gold",
                    arrivals=ArrivalSpec(
                        rate_per_sec=0.5 * rate, n_requests=300, seed=1
                    ),
                    p99_slo_ns=20.0 * svc_ns,
                ),
                TenantSpec(
                    name="bronze",
                    slo_class="bronze",
                    arrivals=ArrivalSpec(
                        rate_per_sec=0.5 * rate,
                        n_requests=600,
                        seed=2,
                        shape="flash",
                        params=(
                            ("spike_factor", 12.0),
                            ("spike_start_request", 100),
                            ("spike_len_requests", 300),
                        ),
                    ),
                ),
            ),
            topology=TopologySpec(n_shards=1, n_replicas=1, n_cores=1),
            admission=AdmissionSpec(enabled=True, bronze_depth=4),
        )

    def test_shedding_run_series_and_traces(self, keys):
        spec = self.spec()
        n_total = sum(t.arrivals.n_requests for t in spec.tenants)
        window = (n_total / spec.tenants[0].arrivals.rate_per_sec) * 1e9 / 10
        results = [
            simulate_scenario(
                spec,
                [service()],
                keys,
                engine=engine,
                telemetry=TelemetryConfig(window_ns=window, traces=True),
            )
            for engine in ("event", "fast")
        ]
        assert_series_equal(results[0].telemetry, results[1].telemetry)
        assert results[0].traces == results[1].traces
        ts = results[0].telemetry
        # Admission control fired, and per-class stats are recorded.
        assert ts.shed > 0
        assert ts.classes == ("bronze", "gold")
        shed_by_class = sum(
            c[3]
            for w in ts.windows
            for c in w.class_stats
            if c[0] == "bronze"
        )
        assert shed_by_class == ts.shed


class FakeMeasurement:
    """Duck-typed stand-in for repro.bench.harness.Measurement."""

    def __init__(self):
        self.index = "X"
        self.config = {}
        self.size_bytes = 1 << 20
        self.counters = counters()


def fake_measurement():
    return FakeMeasurement()


class TestSweepTelemetry:
    def cluster_kwargs(self, keys):
        return dict(
            shard_map=ShardMap.from_keys(keys, 2),
            lookup_keys=request_keys(keys, N_REQ, seed=5),
            rate_per_sec=RATE,
            n_requests=N_REQ,
            seed=5,
            n_replicas=2,
            n_cores=2,
            policy=RouterPolicy(backoff_base_ns=SPAN_NS / 50.0),
            faults=FaultConfig(
                crash_mttf_ns=SPAN_NS / 2.0,
                crash_mttr_ns=SPAN_NS / 10.0,
                seed=11,
            ),
            fault_horizon_ns=1.5 * SPAN_NS,
        )

    def task(self, keys, telemetry=None):
        kw = self.cluster_kwargs(keys)
        return cluster_task(
            [fake_measurement(), fake_measurement()],
            kw["shard_map"],
            kw["lookup_keys"],
            kw["rate_per_sec"],
            kw["n_requests"],
            kw["seed"],
            kw["n_replicas"],
            kw["n_cores"],
            kw["policy"],
            kw["faults"],
            kw["fault_horizon_ns"],
            telemetry=telemetry,
        )

    def test_key_fields_telemetry_invariant_when_off(self, keys):
        off = self.task(keys)
        assert "telemetry" not in off.key_fields()
        on = self.task(keys, telemetry=tel())
        assert "telemetry" in on.key_fields()
        assert sim_key(off) != sim_key(on)
        # The off-key is exactly what it was before telemetry existed:
        # same fields, so cached artifacts stay valid.
        assert sim_key(off) == sim_key(self.task(keys))

    def test_freeze_rejects_traces(self):
        assert freeze_telemetry(None) is None
        with pytest.raises(ValueError, match="traces"):
            freeze_telemetry(tel(traces=True))

    def test_open_loop_task_with_telemetry(self):
        t = open_loop_task(
            fake_measurement(), RATE, N_REQ, 7, 1, telemetry=tel()
        )
        record = run_sim_tasks([t])[0]
        direct = simulate_open_loop(
            ServiceModel(counters()),
            poisson_arrivals(RATE, N_REQ, 7),
            1,
            telemetry=tel(),
        )
        assert TimeSeries.from_dict(record["telemetry"]) == direct.telemetry

    def test_record_identical_serial_vs_jobs(self, keys):
        t = self.task(keys, telemetry=tel())
        serial = run_sim_tasks([t])[0]
        clear_sim_results()
        pooled = run_sim_tasks([t], jobs=2)[0]
        assert serial == pooled
        assert "telemetry" in serial

    def test_on_and_off_records_agree_outside_telemetry(self, keys):
        on = run_sim_tasks([self.task(keys, telemetry=tel())])[0]
        off = run_sim_tasks([self.task(keys)])[0]
        on_rest = {k: v for k, v in on.items() if k != "telemetry"}
        assert on_rest == off

    @pytest.mark.parametrize(
        "warm_engine,replay_engine", [("event", "fast"), ("fast", "event")]
    )
    def test_cross_engine_cache_replay_with_telemetry(
        self, keys, warm_engine, replay_engine, tmp_path, monkeypatch
    ):
        cache = SimResultCache(str(tmp_path / "serving"))
        monkeypatch.setenv("REPRO_SERVE_ENGINE", warm_engine)
        warm = run_sim_tasks(
            [self.task(keys, telemetry=tel())], cache=cache
        )[0]
        clear_sim_results()
        cache.reset_stats()
        monkeypatch.setenv("REPRO_SERVE_ENGINE", replay_engine)
        replayed = run_sim_tasks(
            [self.task(keys, telemetry=tel())], cache=cache
        )[0]
        assert cache.hits == 1 and cache.misses == 0
        assert replayed == warm
        assert TimeSeries.from_dict(
            replayed["telemetry"]
        ) == TimeSeries.from_dict(warm["telemetry"])
