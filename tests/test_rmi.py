"""Recursive model index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.learned.rmi import RMIIndex
from repro.memsim import AddressSpace, PerfTracer, TracedArray

from conftest import build


class TestRMIValidity:
    @pytest.mark.parametrize("stage1", ["linear", "cubic", "loglinear", "radix"])
    def test_valid_on_all_datasets(self, all_datasets_small, stage1):
        for name, ds in all_datasets_small.items():
            idx = build("RMI", ds, branching=128, stage1=stage1)
            probes = list(ds.keys[::37]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, (name, stage1)

    def test_valid_on_absent_keys(self, amzn_small, amzn_workload):
        idx = build("RMI", amzn_small, branching=64)
        assert validate_index(idx, amzn_workload.keys_py) is None

    def test_extreme_probes(self, amzn_small, extreme_probe_keys):
        idx = build("RMI", amzn_small, branching=256)
        assert validate_index(idx, extreme_probe_keys) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=300, unique=True),
        st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_validity_property(self, keys, probe):
        keys.sort()
        idx = RMIIndex(branching=16).build(np.array(keys, dtype=np.uint64))
        assert validate_index(idx, [probe]) is None


class TestRMIStructure:
    def test_branching_one(self, amzn_small):
        idx = build("RMI", amzn_small, branching=1)
        assert validate_index(idx, list(amzn_small.keys[::101])) is None

    def test_error_shrinks_with_branching(self, amzn_small):
        errors = [
            build("RMI", amzn_small, branching=b).mean_log2_error()
            for b in (4, 64, 1024)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_size_grows_with_branching(self, amzn_small):
        sizes = [
            build("RMI", amzn_small, branching=b).size_bytes()
            for b in (16, 256, 4096)
        ]
        assert sizes == sorted(sizes)

    def test_two_reads_per_lookup(self, amzn_small):
        """The paper's 'at most two cache misses for RMI inference'."""
        idx = build("RMI", amzn_small, branching=512)
        t = PerfTracer()
        idx.lookup(int(amzn_small.keys[1234]), t)
        assert t.counters.reads == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RMIIndex(branching=0)
        with pytest.raises(ValueError):
            RMIIndex(stage2="cubic")

    def test_empty_buckets_handled(self):
        # Heavily clustered keys leave most buckets empty.
        keys = np.array(
            sorted({2**40 + i for i in range(50)} | {2**50 + i for i in range(50)}),
            dtype=np.uint64,
        )
        idx = RMIIndex(branching=1024).build(keys)
        probes = [0, 2**40 + 25, 2**45, 2**50 + 25, 2**63]
        assert validate_index(idx, probes) is None

    def test_repr_shows_size(self, amzn_small):
        idx = build("RMI", amzn_small, branching=64)
        assert "MB" in repr(idx)


class TestRMITuner:
    def test_tuner_returns_pareto_set(self, amzn_small):
        from repro.learned.cdfshop import tune_rmi

        configs = tune_rmi(
            amzn_small.keys,
            stage1_types=("linear", "cubic"),
            min_branching_power=4,
            max_branching_power=10,
            branching_step=3,
        )
        assert configs
        sizes = [c.size_bytes for c in configs]
        errors = [c.mean_log2_error for c in configs]
        assert sizes == sorted(sizes)
        assert errors == sorted(errors, reverse=True)

    def test_tuned_config_builds_valid_index(self, amzn_small):
        from repro.learned.cdfshop import tune_rmi

        cfg = tune_rmi(
            amzn_small.keys,
            stage1_types=("linear",),
            min_branching_power=6,
            max_branching_power=8,
        )[0]
        space = AddressSpace()
        data = TracedArray.allocate(space, amzn_small.keys, name="data")
        idx = cfg.build(data, space)
        assert validate_index(idx, list(amzn_small.keys[::53])) is None
