"""Greedy spline corridor (RadixSpline's fitting core)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned.spline import fit_spline, interpolate, max_spline_error

sorted_unique_keys = st.lists(
    st.integers(0, 2**62), min_size=2, max_size=400, unique=True
).map(sorted)


class TestFitSpline:
    def test_endpoints_are_knots(self, amzn_small):
        keys = amzn_small.keys.tolist()
        knots = fit_spline(keys, 16.0)
        assert knots[0] == (keys[0], 0)
        assert knots[-1] == (keys[-1], len(keys) - 1)

    def test_error_bound_respected(self, osm_small):
        keys = osm_small.keys.tolist()
        for eps in (4.0, 32.0, 128.0):
            knots = fit_spline(keys, eps)
            assert max_spline_error(keys, knots) <= eps

    def test_knots_decrease_with_epsilon(self, osm_small):
        keys = osm_small.keys.tolist()
        counts = [len(fit_spline(keys, e)) for e in (2.0, 16.0, 128.0)]
        assert counts == sorted(counts, reverse=True)

    def test_collinear_two_knots(self):
        keys = list(range(0, 5000, 5))
        knots = fit_spline(keys, 1.0)
        assert len(knots) == 2

    def test_single_key(self):
        assert fit_spline([99], 4.0) == [(99, 0)]

    def test_empty(self):
        assert fit_spline([], 4.0) == []

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            fit_spline([3, 3], 1.0)

    def test_knot_keys_strictly_increasing(self, osm_small):
        knots = fit_spline(osm_small.keys.tolist(), 8.0)
        kk = [k for k, _ in knots]
        assert all(b > a for a, b in zip(kk, kk[1:]))

    @given(sorted_unique_keys, st.sampled_from([1.0, 8.0, 64.0]))
    @settings(max_examples=60, deadline=None)
    def test_error_property(self, keys, eps):
        knots = fit_spline(keys, eps)
        assert max_spline_error(keys, knots) <= eps


class TestInterpolate:
    def test_exact_at_knots(self):
        knots = [(0, 0), (100, 50)]
        assert interpolate(knots, 0, 0) == 0.0
        assert interpolate(knots, 0, 100) == 50.0

    def test_midpoint(self):
        knots = [(0, 0), (100, 50)]
        assert interpolate(knots, 0, 50) == pytest.approx(25.0)
