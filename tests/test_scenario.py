"""Unit tests for declarative scenario specs: round trips, validation,
content keys, and the key-space sampler's stream compatibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.cache import scenario_key
from repro.serve.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
)
from repro.serve.faults import FaultConfig
from repro.serve.router import RouterPolicy, request_keys
from repro.serve.scenario import (
    AdmissionSpec,
    ArrivalSpec,
    FaultSpec,
    KeySpaceSpec,
    PolicySpec,
    ScenarioSpec,
    TenantSpec,
    TopologySpec,
    single_tenant_spec,
)


def rich_spec() -> ScenarioSpec:
    """A spec exercising every shape, knob and optional field."""
    return ScenarioSpec(
        name="rich",
        tenants=(
            TenantSpec(
                name="gold",
                slo_class="gold",
                arrivals=ArrivalSpec(
                    rate_per_sec=5e5,
                    n_requests=300,
                    seed=1,
                    shape="diurnal",
                    params=(("peak_to_trough", 2.5), ("period_requests", 60)),
                ),
                keyspace=KeySpaceSpec(seed=1),
                p99_slo_ns=4e6,
            ),
            TenantSpec(
                name="silver",
                slo_class="silver",
                arrivals=ArrivalSpec(
                    rate_per_sec=2e5, n_requests=200, seed=2, shape="bursty"
                ),
                keyspace=KeySpaceSpec(lo_frac=0.5, hi_frac=1.0, seed=2),
            ),
            TenantSpec(
                name="bronze",
                slo_class="bronze",
                arrivals=ArrivalSpec(
                    rate_per_sec=3e5,
                    n_requests=400,
                    seed=3,
                    shape="flash",
                    params=(
                        ("spike_factor", 9.0),
                        ("spike_start_request", 50),
                        ("spike_len_requests", 120),
                    ),
                ),
                keyspace=KeySpaceSpec(
                    lo_frac=0.0, hi_frac=0.5, hot_theta=0.9, seed=3
                ),
            ),
        ),
        topology=TopologySpec(n_shards=4, n_replicas=2, n_cores=2),
        policy=PolicySpec(hedge_after_ns=5e4, batch_window_ns=100.0),
        faults=FaultSpec(crash_mttf_ns=1e7, crash_mttr_ns=1e6, seed=9),
        admission=AdmissionSpec(
            enabled=True, bronze_depth=4, silver_depth=12
        ),
        fault_horizon_ns=5e7,
    )


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        spec = rich_spec()
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()

    def test_indented_json_round_trips_too(self):
        spec = rich_spec()
        assert ScenarioSpec.from_json(spec.to_json(indent=2)) == spec

    def test_int_params_survive_json(self):
        """JSON numbers don't distinguish 60 from 60.0; generate() must
        see ints for request-count knobs after a round trip."""
        spec = rich_spec()
        again = ScenarioSpec.from_json(spec.to_json())
        params = again.tenants[0].arrivals.param_dict()
        assert params["period_requests"] == 60
        assert isinstance(params["period_requests"], int)
        assert again.tenants[0].arrivals.generate() == (
            spec.tenants[0].arrivals.generate()
        )

    def test_defaults_round_trip(self):
        spec = single_tenant_spec(rate_per_sec=1e5, n_requests=50)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_schema_version_checked(self):
        d = rich_spec().to_dict()
        d["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            ScenarioSpec.from_dict(d)


class TestContentKey:
    def test_stable_across_round_trip(self):
        spec = rich_spec()
        again = ScenarioSpec.from_json(spec.to_json())
        assert again.content_key() == spec.content_key()
        assert scenario_key(again) == scenario_key(spec)

    def test_sensitive_to_every_layer(self):
        base = rich_spec()
        variants = [
            base.with_admission(AdmissionSpec(enabled=True, bronze_depth=5)),
            ScenarioSpec.from_dict(
                {**base.to_dict(), "name": "other"}
            ),
            ScenarioSpec.from_dict(
                {**base.to_dict(), "fault_horizon_ns": 6e7}
            ),
        ]
        keys = {base.content_key()} | {v.content_key() for v in variants}
        assert len(keys) == 1 + len(variants)

    def test_scenario_key_versioned_separately(self):
        spec = rich_spec()
        assert scenario_key(spec) != spec.content_key()
        assert scenario_key(spec) != scenario_key(spec, schema_version=2)


class TestValidation:
    def test_unknown_shape(self):
        with pytest.raises(ValueError, match="shape"):
            ArrivalSpec(rate_per_sec=1e5, n_requests=10, shape="square")

    def test_param_must_match_shape(self):
        with pytest.raises(ValueError, match="param"):
            ArrivalSpec(
                rate_per_sec=1e5,
                n_requests=10,
                shape="poisson",
                params=(("spike_factor", 2.0),),
            )

    def test_rate_and_count_positive(self):
        with pytest.raises(ValueError):
            ArrivalSpec(rate_per_sec=0.0, n_requests=10)
        with pytest.raises(ValueError):
            ArrivalSpec(rate_per_sec=1e5, n_requests=0)

    def test_keyspace_fractions(self):
        with pytest.raises(ValueError):
            KeySpaceSpec(lo_frac=0.5, hi_frac=0.5)
        with pytest.raises(ValueError):
            KeySpaceSpec(lo_frac=-0.1, hi_frac=1.0)
        with pytest.raises(ValueError):
            KeySpaceSpec(hot_theta=0.0)

    def test_tenant_validation(self):
        arr = ArrivalSpec(rate_per_sec=1e5, n_requests=10)
        with pytest.raises(ValueError, match="SLO class"):
            TenantSpec(name="t", arrivals=arr, slo_class="platinum")
        with pytest.raises(ValueError, match="name"):
            TenantSpec(name="", arrivals=arr)
        with pytest.raises(ValueError):
            TenantSpec(name="t", arrivals=arr, p99_slo_ns=0.0)

    def test_scenario_requires_unique_tenants(self):
        arr = ArrivalSpec(rate_per_sec=1e5, n_requests=10)
        with pytest.raises(ValueError, match="unique"):
            ScenarioSpec(
                name="s",
                tenants=(
                    TenantSpec(name="t", arrivals=arr),
                    TenantSpec(name="t", arrivals=arr),
                ),
            )
        with pytest.raises(ValueError, match="tenant"):
            ScenarioSpec(name="s", tenants=())

    def test_topology_and_admission_bounds(self):
        with pytest.raises(ValueError):
            TopologySpec(n_shards=0)
        with pytest.raises(ValueError):
            AdmissionSpec(bronze_depth=0)
        with pytest.raises(ValueError, match="SLO class"):
            AdmissionSpec().threshold("platinum")

    def test_tenant_index(self):
        spec = rich_spec()
        assert spec.tenant_index("bronze") == 2
        with pytest.raises(KeyError):
            spec.tenant_index("nope")


class TestPolicyAndFaultBridges:
    def test_policy_spec_round_trips_router_policy(self):
        policy = RouterPolicy(
            hedge_after_ns=123.0, max_attempts=3, batch_window_ns=7.0
        )
        spec = PolicySpec.from_router_policy(policy)
        assert spec.to_router_policy() == policy
        assert PolicySpec.from_dict(spec.to_dict()) == spec

    def test_default_policy_is_degenerate(self):
        assert PolicySpec().to_router_policy() == RouterPolicy()

    def test_fault_spec_round_trips_fault_config(self):
        config = FaultConfig(
            crash_mttf_ns=1e6, crash_mttr_ns=2e5, slow_mttf_ns=3e6, seed=4
        )
        spec = FaultSpec.from_fault_config(config)
        assert spec.to_fault_config() == config
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_disabled_faults_convert_to_none(self):
        assert FaultSpec().to_fault_config() is None
        assert not FaultSpec().enabled
        assert FaultSpec.from_fault_config(None) == FaultSpec()

    def test_invalid_knobs_rejected_at_spec_level(self):
        with pytest.raises(ValueError):
            PolicySpec(max_attempts=0)
        with pytest.raises(ValueError):
            FaultSpec(crash_mttf_ns=-1.0)


class TestArrivalSpecGenerate:
    @pytest.mark.parametrize(
        "shape,params,reference",
        [
            ("poisson", (), lambda r, n, s: poisson_arrivals(r, n, s)),
            (
                "bursty",
                (("burst_factor", 3.0),),
                lambda r, n, s: bursty_arrivals(r, n, s, burst_factor=3.0),
            ),
            (
                "diurnal",
                (("period_requests", 40),),
                lambda r, n, s: diurnal_arrivals(r, n, s, period_requests=40),
            ),
            (
                "flash",
                (("spike_factor", 5.0),),
                lambda r, n, s: flash_crowd_arrivals(r, n, s, spike_factor=5.0),
            ),
        ],
    )
    def test_generate_matches_direct_call(self, shape, params, reference):
        spec = ArrivalSpec(
            rate_per_sec=2e5, n_requests=120, seed=7, shape=shape, params=params
        )
        assert spec.generate() == reference(2e5, 120, 7)


@pytest.fixture(scope="module")
def keys():
    raw = np.random.default_rng(0).integers(
        0, 2**50, size=4000, dtype=np.uint64
    )
    return np.unique(raw)


class TestKeySpaceSpec:
    def test_degenerate_sample_is_request_keys(self, keys):
        """Full-range uniform sampling must reproduce the router's
        request_keys stream exactly -- the byte-identity differential
        rests on this."""
        for seed in (0, 7, 42):
            spec = KeySpaceSpec(seed=seed)
            assert spec.sample(keys, 333) == request_keys(keys, 333, seed)

    def test_subrange_stays_in_bounds(self, keys):
        spec = KeySpaceSpec(lo_frac=0.25, hi_frac=0.5, seed=3)
        lo, hi = spec.bounds(len(keys))
        sampled = spec.sample(keys, 500)
        lo_key, hi_key = int(keys[lo]), int(keys[hi - 1])
        assert all(lo_key <= k <= hi_key for k in sampled)

    def test_hotspot_deterministic_and_in_bounds(self, keys):
        spec = KeySpaceSpec(lo_frac=0.0, hi_frac=0.5, hot_theta=0.99, seed=5)
        a = spec.sample(keys, 400)
        assert a == spec.sample(keys, 400)
        lo, hi = spec.bounds(len(keys))
        allowed = set(int(k) for k in keys[lo:hi])
        assert set(a) <= allowed

    def test_hotspot_concentrates_mass(self, keys):
        """Zipf sampling must visibly concentrate on few keys compared
        to uniform over the same slice."""
        from collections import Counter

        hot = KeySpaceSpec(hi_frac=0.5, hot_theta=0.99, seed=5)
        cold = KeySpaceSpec(hi_frac=0.5, seed=5)
        top_hot = Counter(hot.sample(keys, 2000)).most_common(1)[0][1]
        top_cold = Counter(cold.sample(keys, 2000)).most_common(1)[0][1]
        assert top_hot > 4 * top_cold

    def test_bounds_never_empty(self):
        spec = KeySpaceSpec(lo_frac=0.99, hi_frac=1.0)
        lo, hi = spec.bounds(10)
        assert hi > lo
        with pytest.raises(ValueError):
            spec.bounds(0)

    def test_sample_requires_requests(self, keys):
        with pytest.raises(ValueError):
            KeySpaceSpec().sample(keys, 0)
