"""Synthetic extras (uniform, lognormal) and the paper's point about them."""

import numpy as np
import pytest

from repro.datasets.generators import SYNTHETIC_GENERATORS
from repro.datasets.loader import ALL_DATASET_NAMES, DATASET_NAMES, make_dataset


@pytest.mark.parametrize("name", sorted(SYNTHETIC_GENERATORS))
class TestSyntheticContract:
    def test_exact_count_sorted_unique(self, name):
        keys = SYNTHETIC_GENERATORS[name](2_000, seed=3)
        assert len(keys) == 2_000
        as_obj = keys.astype(object)
        assert all(b > a for a, b in zip(as_obj, as_obj[1:]))

    def test_loadable_by_name(self, name):
        ds = make_dataset(name, 1_500, seed=1)
        assert ds.n == 1_500


def test_defaults_exclude_synthetics():
    """The paper's evaluation excludes synthetic data (Section 4.1.2)."""
    assert set(DATASET_NAMES) == {"amzn", "face", "osm", "wiki"}
    assert set(ALL_DATASET_NAMES) >= set(DATASET_NAMES) | {"uniform", "lognormal"}


def test_lognormal_is_trivially_learnable():
    """'Drawn from a known distribution, in which case learning the
    distribution is trivial' -- a small PGM gets tiny segments counts
    relative to osm."""
    from repro.learned.pla import fit_pla

    logn = make_dataset("lognormal", 8_000, seed=0)
    osm = make_dataset("osm", 8_000, seed=0)
    segs_logn = len(fit_pla(logn.keys.tolist(), 64.0))
    segs_osm = len(fit_pla(osm.keys.tolist(), 64.0))
    assert segs_logn < segs_osm

def test_uniform_favours_rbs():
    """On uniform data the radix table is a near-perfect index."""
    from conftest import build
    from repro.memsim import PerfTracer

    ds = make_dataset("uniform", 8_000, seed=0)
    idx = build("RBS", ds, radix_bits=12)
    widths = [len(idx.lookup(int(k))) for k in ds.keys[::97]]
    assert sum(widths) / len(widths) < 8
