"""Dynamic PGM (logarithmic method) extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned.dynamic_pgm import DynamicPGM


@pytest.fixture()
def filled():
    rng = random.Random(7)
    d = DynamicPGM(epsilon=16, buffer_capacity=32)
    items = {}
    for i in range(2_000):
        key = rng.randrange(2**50)
        items[key] = i
        d.insert(key, i)
    return d, items


class TestInsertGet:
    def test_all_inserted_retrievable(self, filled):
        d, items = filled
        for key, value in list(items.items())[::23]:
            assert d.get(key) == value

    def test_absent_returns_none(self, filled):
        d, items = filled
        absent = max(items) + 1
        assert d.get(absent) is None

    def test_overwrite_in_buffer(self):
        d = DynamicPGM(buffer_capacity=100)
        d.insert(5, 1)
        d.insert(5, 2)
        assert d.get(5) == 2
        assert len(d) == 1

    def test_overwrite_across_runs(self):
        d = DynamicPGM(buffer_capacity=4)
        for i in range(20):
            d.insert(i, i)
        d.insert(3, 999)  # lands in the buffer, shadows the run copy
        assert d.get(3) == 999

    def test_run_sizes_geometric(self, filled):
        d, _ = filled
        sizes = [r.n for r in d._runs]
        assert sizes == sorted(sizes, reverse=True)
        # Logarithmic method keeps the run count logarithmic.
        assert d.n_runs <= 14

    def test_len_counts_distinct_keys(self):
        d = DynamicPGM(buffer_capacity=4)
        for i in range(10):
            d.insert(i, i)
        for i in range(5):
            d.insert(i, i + 100)  # overwrites
        assert len(d) == 10

    def test_index_size_positive_after_flush(self, filled):
        d, _ = filled
        assert d.index_size_bytes() > 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            DynamicPGM(buffer_capacity=0)


class TestRange:
    def test_full_range_sorted_unique(self, filled):
        d, items = filled
        out = list(d.range(0, 2**50))
        assert [k for k, _ in out] == sorted(items)
        assert dict(out) == items

    def test_subrange(self, filled):
        d, items = filled
        keys = sorted(items)
        lo, hi = keys[100], keys[200]
        out = list(d.range(lo, hi))
        assert [k for k, _ in out] == keys[100:200]

    def test_empty_range(self, filled):
        d, _ = filled
        assert list(d.range(5, 5)) == []

    def test_newest_value_wins_in_range(self):
        d = DynamicPGM(buffer_capacity=4)
        for i in range(16):
            d.insert(i, i)
        d.insert(7, 777)
        out = dict(d.range(0, 100))
        assert out[7] == 777


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**40), st.integers(0, 2**30)),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_semantics(self, ops):
        d = DynamicPGM(epsilon=8, buffer_capacity=16)
        reference = {}
        for key, value in ops:
            d.insert(key, value)
            reference[key] = value
        for key in list(reference)[:50]:
            assert d.get(key) == reference[key]
        assert len(d) == len(reference)
        out = dict(d.range(0, 2**40 + 1))
        assert out == reference
