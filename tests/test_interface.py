"""SortedDataIndex lifecycle contract."""

import numpy as np
import pytest

from repro.core.interface import SortedDataIndex
from repro.core.registry import make_index
from repro.memsim import AddressSpace, TracedArray


class TestBuildContract:
    def test_build_from_plain_list(self):
        idx = make_index("BTree", gap=1).build([1, 5, 9])
        assert idx.n_keys == 3
        assert idx.lookup(5).contains(1)

    def test_build_from_numpy(self):
        idx = make_index("PGM", epsilon=4).build(
            np.array([2, 4, 6], dtype=np.uint64)
        )
        assert idx.n_keys == 3

    def test_build_records_time(self):
        idx = make_index("RMI", branching=16).build(list(range(1, 2000, 2)))
        assert idx.build_seconds > 0

    def test_traced_array_requires_space(self):
        space = AddressSpace()
        data = TracedArray.allocate(space, np.arange(1, 10, dtype=np.uint64))
        with pytest.raises(ValueError, match="AddressSpace"):
            make_index("BTree").build(data)

    def test_unbuilt_access_raises(self):
        idx = make_index("BTree")
        with pytest.raises(RuntimeError, match="not been built"):
            _ = idx.data

    def test_unbuilt_repr(self):
        assert "unbuilt" in repr(make_index("RMI"))

    def test_size_accounting_sums_registered(self):
        idx = make_index("RBS", radix_bits=8).build(list(range(1, 100)))
        # Table of 2**8 + 1 uint32 entries.
        assert idx.size_bytes() == (257) * 4

    def test_build_returns_self(self):
        idx = make_index("BS")
        assert idx.build([1, 2, 3]) is idx


class TestCapabilitiesDefaults:
    def test_point_only_default_false(self):
        assert SortedDataIndex.point_only is False

    def test_size_mb_conversion(self):
        idx = make_index("RBS", radix_bits=8).build(list(range(1, 100)))
        assert idx.size_mb() == pytest.approx(idx.size_bytes() / 1048576)
