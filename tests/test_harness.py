"""Measurement harness."""

import pytest

from repro.bench.harness import (
    LookupError_,
    Measurement,
    build_index,
    measure,
    measure_index,
)
from repro.datasets import make_dataset, make_workload


@pytest.fixture(scope="module")
def ds():
    return make_dataset("amzn", 4_000, seed=21)


@pytest.fixture(scope="module")
def wl(ds):
    return make_workload(ds, 600, seed=22)


class TestBuildIndex:
    def test_builds_in_shared_space(self, ds):
        built = build_index(ds, "RMI", {"branching": 64})
        assert built.index.size_bytes() > 0
        assert len(built.data) == ds.n
        # Data, payloads and index internals share the address space.
        names = [name for name, _, _ in built.space.allocations]
        assert "data" in names and "payloads" in names

    def test_32bit_dataset_gets_32bit_data_array(self):
        ds32 = make_dataset("amzn", 2_000, key_bits=32)
        built = build_index(ds32, "BTree", {"gap": 1})
        assert built.data.itemsize == 4


class TestMeasure:
    def test_basic_measurement(self, ds, wl):
        m = measure_index(ds, wl, "RMI", {"branching": 256}, n_lookups=100, warmup=50)
        assert isinstance(m, Measurement)
        assert m.latency_ns > 0
        assert m.counters.reads > 0
        assert m.size_mb > 0
        assert m.n_lookups == 100

    def test_verification_catches_broken_index(self, ds, wl):
        built = build_index(ds, "RMI", {"branching": 64})
        from repro.core.bounds import SearchBound

        built.index.lookup = lambda key, tracer=None: SearchBound(0, 1)
        with pytest.raises(LookupError_):
            measure(built, wl, n_lookups=50, warmup=0)

    def test_cold_slower_than_warm(self, ds, wl):
        warm = measure_index(ds, wl, "BTree", {"gap": 1}, n_lookups=150, warmup=100)
        cold = measure_index(
            ds, wl, "BTree", {"gap": 1}, n_lookups=150, warmup=100, warm=False
        )
        assert cold.latency_ns > 1.3 * warm.latency_ns

    def test_fence_slower(self, ds, wl):
        m = measure_index(ds, wl, "RMI", {"branching": 256}, n_lookups=100)
        assert m.fence_latency_ns > m.latency_ns

    def test_search_variants(self, ds, wl):
        for search in ("binary", "linear", "interpolation"):
            m = measure_index(
                ds, wl, "PGM", {"epsilon": 32}, n_lookups=80, search=search
            )
            assert m.search == search
            assert m.latency_ns > 0

    def test_log2_bound_tracks_epsilon(self, ds, wl):
        wide = measure_index(ds, wl, "PGM", {"epsilon": 128}, n_lookups=80)
        narrow = measure_index(ds, wl, "PGM", {"epsilon": 4}, n_lookups=80)
        assert wide.avg_log2_bound > narrow.avg_log2_bound

    def test_point_only_hash_measures(self, ds, wl):
        m = measure_index(ds, wl, "RobinHash", {}, n_lookups=100)
        assert m.latency_ns > 0

    def test_bs_has_zero_size(self, ds, wl):
        m = measure_index(ds, wl, "BS", {}, n_lookups=80)
        assert m.size_bytes == 0
        assert m.counters.reads > 8  # all work in the last mile
