"""Deprecated module shims: warn on import, keep the public API alive."""

from __future__ import annotations

import importlib
import sys
import warnings


class TestFitingTreeShim:
    def test_fresh_import_emits_deprecation_warning(self):
        sys.modules.pop("repro.learned.fiting_tree", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module("repro.learned.fiting_tree")
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations, "import emitted no DeprecationWarning"
        message = str(deprecations[0].message)
        assert "fitting_tree" in message
        # The warning must name the removal release (satellite of the
        # observability PR; the lint denylist enforces no new imports).
        assert "removed in release 2.0" in message

    def test_public_api_is_the_canonical_class(self):
        sys.modules.pop("repro.learned.fiting_tree", None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = importlib.import_module("repro.learned.fiting_tree")
        from repro.learned.fitting_tree import FITingTreeIndex

        assert shim.__all__ == ["FITingTreeIndex"]
        # Same object: no re-registration, isinstance checks keep working.
        assert shim.FITingTreeIndex is FITingTreeIndex

    def test_shim_class_still_functions(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = importlib.import_module("repro.learned.fiting_tree")
        index = shim.FITingTreeIndex(epsilon=32)
        assert index.name == "FITing"
