"""Property tests on the memory-hierarchy simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.cache import LINE_SIZE, Cache, CacheHierarchy
from repro.memsim.tlb import TLB
from repro.memsim.tracer import PerfTracer


class TestCacheProperties:
    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_immediate_rehit(self, lines):
        """Any just-accessed line hits on immediate re-access."""
        c = Cache(8 * 1024, 4, "p")
        for line in lines:
            c.access(line)
            assert c.access(line) is True

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_residency_bounded_by_capacity(self, lines):
        c = Cache(4 * 1024, 4, "p")
        max_lines = c.size_bytes // LINE_SIZE
        for line in lines:
            c.access(line)
        assert c.resident_lines() <= max_lines

    @given(st.integers(1, 16))
    @settings(max_examples=16, deadline=None)
    def test_lru_stack_property(self, assoc):
        """In one set, the most recent `assoc` distinct lines all hit."""
        c = Cache(assoc * LINE_SIZE, assoc, "p")  # single set
        n_sets = c.n_sets
        assert n_sets == 1
        for line in range(assoc * 3):
            c.access(line)
        recent = range(assoc * 2, assoc * 3)
        assert all(c.contains(line) for line in recent)

    @given(st.lists(st.integers(0, 2**24), min_size=1, max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_hierarchy_counters_conserve(self, addrs):
        """Every read lands at exactly one level."""
        t = PerfTracer()
        for a in addrs:
            t.read(a * 8)
        c = t.counters
        events = c.l1_hits + c.l2_hits + c.l3_hits + c.llc_misses
        # Each read = 1 data access + 1 page-walk access per TLB miss.
        assert events == c.reads + c.tlb_misses

    @given(st.lists(st.integers(0, 2**18), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_warm_rerun_never_slower(self, addrs):
        """Replaying an access trace the second time cannot miss more."""
        h = CacheHierarchy()
        first = sum(1 for a in addrs if h.access_addr(a * 64) == 4)
        second = sum(1 for a in addrs if h.access_addr(a * 64) == 4)
        assert second <= first


class TestTlbProperties:
    @given(st.lists(st.integers(0, 2**14), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_immediate_rehit(self, pages):
        t = TLB(l1_entries=8, l2_entries=32)
        for page in pages:
            t.access_addr(page << 12)
            assert t.access_addr(page << 12) is True

    def test_walk_addr_disjoint_from_data(self):
        """Page-table pseudo-addresses never alias index data."""
        assert TLB.walk_addr(0) >= (1 << 44)
        assert TLB.walk_addr(2**40) != TLB.walk_addr(2**40 + (1 << 12))
