"""Differential suite: the fast engine IS the reference engine, counter-wise.

Hypothesis drives random read/instr/branch/flush streams through both
engines and asserts byte-identical :class:`PerfCounters` -- not just at
the end, but at every intermediate snapshot.  Streams mix tight spatial
locality (repeated lines and pages, the fast paths' home turf) with
scattered addresses (eviction pressure), because the fast engine's
shortcuts are exactly the places where a subtle state divergence would
hide.

The same property is asserted for record-replay: replaying a recorded
stream must equal executing it directly, on either engine.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    Cache,
    CacheHierarchy,
    PerfTracer,
    SiteInterner,
    TraceRecorder,
    make_engine,
)
from repro.memsim.engine import FastEngine
from repro.memsim.tlb import TLB

_SITES = ["bs.cmp", "btree.descend", "rmi.clamp", "loop"]

# A handful of base addresses reused across events gives the streams
# real temporal locality; small offsets give spatial locality within
# lines and pages; the huge bases exercise distinct TLB pages.
_BASES = [0, 4096, 65536, 1 << 20, (1 << 20) + 64, 1 << 30, (1 << 44) - 8192]


def _events():
    read = st.tuples(
        st.just("read"),
        st.sampled_from(_BASES),
        st.integers(0, 5000),
        st.sampled_from([1, 2, 4, 8, 16, 64, 200]),
    )
    branch = st.tuples(
        st.just("branch"), st.sampled_from(_SITES), st.booleans()
    )
    instr = st.tuples(st.just("instr"), st.integers(1, 12))
    flush = st.tuples(st.just("flush"))
    snapshot = st.tuples(st.just("snapshot"))
    return st.lists(
        st.one_of(read, branch, instr, flush, snapshot), max_size=400
    )


def _apply(tracer, events):
    """Feed the tracer-interface events (read/branch/instr) only."""
    for ev in events:
        if ev[0] == "read":
            tracer.read(ev[1] + ev[2], ev[3])
        elif ev[0] == "branch":
            tracer.branch(ev[1], ev[2])
        elif ev[0] == "instr":
            tracer.instr(ev[1])


def _drive(tracer, events):
    """Apply an event list; return the snapshots taken along the way."""
    snaps = [tracer.snapshot()]
    for ev in events:
        if ev[0] == "flush":
            tracer.flush_caches()
        elif ev[0] == "snapshot":
            snaps.append(tracer.snapshot())
        else:
            _apply(tracer, [ev])
    snaps.append(tracer.snapshot())
    return snaps


@given(_events())
@settings(max_examples=150, deadline=None)
def test_fast_engine_is_counter_identical(events):
    ref = PerfTracer(engine="reference")
    fast = PerfTracer(engine="fast")
    assert _drive(ref, events) == _drive(fast, events)


@given(_events())
@settings(max_examples=60, deadline=None)
def test_fast_engine_identical_under_tiny_geometry(events):
    """Small caches/TLBs put every access on the eviction paths."""
    ref = PerfTracer(
        caches=CacheHierarchy(
            l1=Cache(2 * 64, 2, "L1"),
            l2=Cache(8 * 64, 2, "L2"),
            l3=Cache(16 * 64, 4, "L3"),
        ),
        tlb=TLB(l1_entries=2, l2_entries=4),
    )
    fast = PerfTracer(
        engine=FastEngine(
            l1=(2 * 64, 2), l2=(8 * 64, 2), l3=(16 * 64, 4), tlb_entries=(2, 4)
        )
    )
    assert _drive(ref, events) == _drive(fast, events)


@given(_events())
@settings(max_examples=60, deadline=None)
def test_replay_equals_direct_execution(events):
    """Record through a recorder, replay on fresh engines of both kinds."""
    sites = SiteInterner()
    recorder = TraceRecorder(sites=sites)
    # Flushes and snapshots are measurement-loop concerns, not lookup
    # events; a trace holds only the tracer-visible stream.
    stream = [e for e in events if e[0] in ("read", "branch", "instr")]
    _apply(recorder, stream)
    trace = recorder.finish()

    direct = PerfTracer(engine="reference", sites=sites)
    _apply(direct, stream)
    expected = direct.snapshot()

    for name in ("reference", "fast"):
        t = PerfTracer(engine=name, sites=sites)
        t.replay(trace)
        assert t.snapshot() == expected, name


@given(_events())
@settings(max_examples=40, deadline=None)
def test_replay_composes_with_live_events(events):
    """Interleaving replay with direct calls keeps engines in lockstep."""
    stream = [e for e in events if e[0] in ("read", "branch", "instr")]
    sites = SiteInterner()
    recorder = TraceRecorder(sites=sites)
    _apply(recorder, stream)
    trace = recorder.finish()

    results = []
    for name in ("reference", "fast"):
        t = PerfTracer(engine=name, sites=sites)
        _apply(t, stream)  # warm state directly...
        t.replay(trace)  # ...then replay the same stream on top
        t.flush_caches()
        t.replay(trace)  # ...and again from cold
        results.append(t.snapshot())
    assert results[0] == results[1]


def test_branch_site_count_matches_across_engines():
    events = [("branch", s, t) for s in _SITES for t in (True, False, True)]
    ref = make_engine("reference")
    fast = make_engine("fast")
    for _, site, taken in events:
        ref.branch(site, taken)
        fast.branch(site, taken)
    assert ref.n_branch_sites() == fast.n_branch_sites() == len(_SITES)


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_multiline_and_page_crossing_reads(engine):
    """Deterministic spot-check: a read spanning lines and pages."""
    t = PerfTracer(engine=engine)
    t.read(4096 - 32, 64)  # crosses a line AND a page boundary
    c = t.counters
    assert c.reads == 1
    assert c.l1_hits + c.l2_hits + c.l3_hits + c.llc_misses == 3  # walk + 2
    assert c.tlb_misses == 1  # only the first page is translated
