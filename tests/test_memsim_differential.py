"""Differential suite: every engine IS the reference engine, counter-wise.

Hypothesis drives random read/instr/branch/flush streams through all
engines (reference, fast, vector) and asserts byte-identical
:class:`PerfCounters` -- not just at the end, but at every intermediate
snapshot.  Streams mix tight spatial locality (repeated lines and
pages, the fast paths' home turf) with scattered addresses (eviction
pressure), because the engines' shortcuts are exactly the places where
a subtle state divergence would hide.

The same property is asserted for record-replay: replaying a recorded
stream must equal executing it directly, on any engine -- including
repeat replays of the *same* trace objects, which exercise the vector
engine's compiled plans and replay memoization.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    Cache,
    CacheHierarchy,
    ENGINE_NAMES,
    PerfTracer,
    SiteInterner,
    TraceRecorder,
    VectorEngine,
    make_engine,
)
from repro.memsim.engine import FastEngine
from repro.memsim.tlb import TLB
from repro.memsim.trace import K_REPEAT

#: The engines differentially tested against the reference.
_ALT_ENGINES = tuple(n for n in ENGINE_NAMES if n != "reference")

_SITES = ["bs.cmp", "btree.descend", "rmi.clamp", "loop"]

# A handful of base addresses reused across events gives the streams
# real temporal locality; small offsets give spatial locality within
# lines and pages; the huge bases exercise distinct TLB pages.
_BASES = [0, 4096, 65536, 1 << 20, (1 << 20) + 64, 1 << 30, (1 << 44) - 8192]


def _events():
    read = st.tuples(
        st.just("read"),
        st.sampled_from(_BASES),
        st.integers(0, 5000),
        st.sampled_from([1, 2, 4, 8, 16, 64, 200]),
    )
    branch = st.tuples(
        st.just("branch"), st.sampled_from(_SITES), st.booleans()
    )
    instr = st.tuples(st.just("instr"), st.integers(1, 12))
    flush = st.tuples(st.just("flush"))
    snapshot = st.tuples(st.just("snapshot"))
    return st.lists(
        st.one_of(read, branch, instr, flush, snapshot), max_size=400
    )


def _apply(tracer, events):
    """Feed the tracer-interface events (read/branch/instr) only."""
    for ev in events:
        if ev[0] == "read":
            tracer.read(ev[1] + ev[2], ev[3])
        elif ev[0] == "branch":
            tracer.branch(ev[1], ev[2])
        elif ev[0] == "instr":
            tracer.instr(ev[1])


def _drive(tracer, events):
    """Apply an event list; return the snapshots taken along the way."""
    snaps = [tracer.snapshot()]
    for ev in events:
        if ev[0] == "flush":
            tracer.flush_caches()
        elif ev[0] == "snapshot":
            snaps.append(tracer.snapshot())
        else:
            _apply(tracer, [ev])
    snaps.append(tracer.snapshot())
    return snaps


@given(_events())
@settings(max_examples=150, deadline=None)
def test_engines_are_counter_identical(events):
    ref_snaps = _drive(PerfTracer(engine="reference"), events)
    for name in _ALT_ENGINES:
        assert _drive(PerfTracer(engine=name), events) == ref_snaps, name


def _tiny_reference():
    return PerfTracer(
        caches=CacheHierarchy(
            l1=Cache(2 * 64, 2, "L1"),
            l2=Cache(8 * 64, 2, "L2"),
            l3=Cache(16 * 64, 4, "L3"),
        ),
        tlb=TLB(l1_entries=2, l2_entries=4),
    )


_TINY_KW = dict(
    l1=(2 * 64, 2), l2=(8 * 64, 2), l3=(16 * 64, 4), tlb_entries=(2, 4)
)


@given(_events())
@settings(max_examples=60, deadline=None)
def test_engines_identical_under_tiny_geometry(events):
    """Small caches/TLBs put every access on the eviction paths."""
    ref_snaps = _drive(_tiny_reference(), events)
    for eng in (FastEngine(**_TINY_KW), VectorEngine(**_TINY_KW)):
        assert _drive(PerfTracer(engine=eng), events) == ref_snaps, eng.name


@given(_events())
@settings(max_examples=40, deadline=None)
def test_engines_identical_under_degenerate_geometry(events):
    """1-set/1-way caches and a 1-entry TLB: everything evicts, always."""
    ref = PerfTracer(
        caches=CacheHierarchy(
            l1=Cache(64, 1, "L1"),
            l2=Cache(2 * 64, 2, "L2"),
            l3=Cache(4 * 64, 4, "L3"),
        ),
        tlb=TLB(l1_entries=1, l2_entries=1),
    )
    kw = dict(l1=(64, 1), l2=(2 * 64, 2), l3=(4 * 64, 4), tlb_entries=(1, 1))
    ref_snaps = _drive(ref, events)
    for eng in (FastEngine(**kw), VectorEngine(**kw)):
        assert _drive(PerfTracer(engine=eng), events) == ref_snaps, eng.name


@given(_events())
@settings(max_examples=60, deadline=None)
def test_replay_equals_direct_execution(events):
    """Record through a recorder, replay on fresh engines of every kind."""
    sites = SiteInterner()
    recorder = TraceRecorder(sites=sites)
    # Flushes and snapshots are measurement-loop concerns, not lookup
    # events; a trace holds only the tracer-visible stream.
    stream = [e for e in events if e[0] in ("read", "branch", "instr")]
    _apply(recorder, stream)
    trace = recorder.finish()

    direct = PerfTracer(engine="reference", sites=sites)
    _apply(direct, stream)
    expected = direct.snapshot()

    for name in ENGINE_NAMES:
        t = PerfTracer(engine=name, sites=sites)
        t.replay(trace)
        assert t.snapshot() == expected, name
        # A second fresh engine replaying the same trace object takes
        # the vector engine's memoized path; still byte-identical.
        t2 = PerfTracer(engine=name, sites=sites)
        t2.replay(trace)
        assert t2.snapshot() == expected, name


@given(_events(), _events())
@settings(max_examples=40, deadline=None)
def test_replay_composes_with_live_events(events, events2):
    """Interleaving replays with direct calls keeps engines in lockstep."""
    stream = [e for e in events if e[0] in ("read", "branch", "instr")]
    stream2 = [e for e in events2 if e[0] in ("read", "branch", "instr")]
    sites = SiteInterner()
    recorder = TraceRecorder(sites=sites)
    _apply(recorder, stream)
    trace = recorder.finish()
    recorder2 = TraceRecorder(sites=sites)
    _apply(recorder2, stream2)
    trace2 = recorder2.finish()

    results = []
    for name in ENGINE_NAMES:
        t = PerfTracer(engine=name, sites=sites)
        t.replay(trace)  # from pristine state (vector: memoizable)
        snaps = [t.snapshot()]
        t.replay(trace2)  # chained replay (vector: token chain)
        snaps.append(t.snapshot())
        _apply(t, stream)  # live events invalidate any memo token...
        t.replay(trace)  # ...so this replays against warmed state
        snaps.append(t.snapshot())
        t.flush_caches()
        t.replay(trace)  # and again from cold (vector: flushed token)
        t.flush_caches()
        t.replay(trace)
        snaps.append(t.snapshot())
        results.append(snaps)
    for name, snaps in zip(ENGINE_NAMES[1:], results[1:]):
        assert snaps == results[0], name


@given(st.integers(1, 9), st.integers(0, 64), st.booleans())
@settings(max_examples=60, deadline=None)
def test_repeat_compression_boundaries(run_len, offset, branch_between):
    """K_REPEAT runs -- across instr/branch gaps and page boundaries.

    A repeated same-line read run-length-compresses into one K_REPEAT
    event; a read on a different line (here: across the page boundary)
    must break the run.  Replay of the compressed trace is exact on
    every engine.
    """
    sites = SiteInterner()
    recorder = TraceRecorder(sites=sites)
    stream = [("read", 0, offset, 8)]
    for _ in range(run_len):
        stream.append(("read", 0, offset, 1))
        if branch_between:
            stream.append(("branch", "loop", True))
            stream.append(("instr", 2))
    # Same line again, then break the run across the page boundary.
    stream.append(("read", 0, offset, 1))
    stream.append(("read", 4096 - 32, 0, 64))
    stream.append(("read", 0, offset, 1))
    _apply(recorder, stream)
    trace = recorder.finish()
    assert K_REPEAT in trace.kinds.tolist()

    direct = PerfTracer(engine="reference", sites=sites)
    _apply(direct, stream)
    expected = direct.snapshot()
    for name in ENGINE_NAMES:
        t = PerfTracer(engine=name, sites=sites)
        t.replay(trace)
        assert t.snapshot() == expected, name


def test_vector_replay_resolves_leading_repeat_against_live_state():
    """A trace whose first read repeats the engine's MRU line.

    The vector plan cannot classify the first read at compile time (it
    depends on the replaying engine's state), so it is resolved at
    replay time -- both ways.
    """
    sites = SiteInterner()
    recorder = TraceRecorder(sites=sites)
    _apply(recorder, [("read", 4096, 0, 8), ("read", 4096, 8, 8)])
    trace = recorder.finish()
    for warm_addr in (4096, 1 << 20):  # MRU-matching and not
        snaps = []
        for name in ENGINE_NAMES:
            t = PerfTracer(engine=name, sites=sites)
            t.read(warm_addr, 8)
            t.replay(trace)
            snaps.append(t.snapshot())
        assert snaps[1] == snaps[0] and snaps[2] == snaps[0], warm_addr


def test_branch_site_count_matches_across_engines():
    events = [("branch", s, t) for s in _SITES for t in (True, False, True)]
    engines = [make_engine(name) for name in ENGINE_NAMES]
    for _, site, taken in events:
        for e in engines:
            e.branch(site, taken)
    assert {e.n_branch_sites() for e in engines} == {len(_SITES)}


@pytest.mark.parametrize("engine", list(ENGINE_NAMES))
def test_multiline_and_page_crossing_reads(engine):
    """Deterministic spot-check: a read spanning lines and pages."""
    t = PerfTracer(engine=engine)
    t.read(4096 - 32, 64)  # crosses a line AND a page boundary
    c = t.counters
    assert c.reads == 1
    assert c.l1_hits + c.l2_hits + c.l3_hits + c.llc_misses == 3  # walk + 2
    assert c.tlb_misses == 1  # only the first page is translated
