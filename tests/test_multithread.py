"""Multithreaded throughput model."""

import pytest

from repro.bench.harness import Measurement
from repro.bench.multithread import MachineModel, thread_sweep, throughput
from repro.memsim.counters import PerfCountersF


def fake_measurement(instructions=50, llc_misses=3.0, branch_misses=1.0):
    c = PerfCountersF(
        instructions=instructions,
        branch_misses=branch_misses,
        llc_misses=llc_misses,
        l1_hits=4.0,
    )
    from repro.memsim.costmodel import XEON_GOLD_6230

    return Measurement(
        index="X",
        dataset="amzn",
        config={},
        n_keys=1000,
        size_bytes=1 << 20,
        build_seconds=0.0,
        counters=c,
        latency_ns=XEON_GOLD_6230.latency_ns(c),
        fence_latency_ns=XEON_GOLD_6230.latency_ns(c, fence=True),
        avg_log2_bound=5.0,
        n_lookups=100,
    )


class TestMachineModel:
    def test_linear_up_to_cores(self):
        m = MachineModel(cores=20)
        assert m.effective_parallelism(10) == 10
        assert m.effective_parallelism(20) == 20

    def test_hyperthreads_partial(self):
        m = MachineModel(cores=20, threads=40, ht_gain=0.6)
        assert m.effective_parallelism(40) == pytest.approx(32.0)

    def test_capped_at_thread_count(self):
        m = MachineModel(cores=20, threads=40)
        assert m.effective_parallelism(80) == m.effective_parallelism(40)


class TestThroughput:
    def test_monotone_in_threads(self):
        m = fake_measurement()
        points = thread_sweep(m, [1, 2, 4, 8, 16, 32, 40])
        rates = [p.lookups_per_sec for p in points]
        assert rates == sorted(rates)

    def test_single_thread_close_to_inverse_latency(self):
        m = fake_measurement()
        p = throughput(m, 1)
        expected = 1e9 / m.latency_ns
        assert p.lookups_per_sec == pytest.approx(expected, rel=0.1)

    def test_fence_lowers_throughput(self):
        m = fake_measurement()
        assert (
            throughput(m, 40, fence=True).lookups_per_sec
            < throughput(m, 40, fence=False).lookups_per_sec
        )

    def test_high_miss_rate_throttles_scaling(self):
        """The paper's RobinHash observation: many misses -> poor speedup."""
        lean = fake_measurement(llc_misses=0.5)
        heavy = fake_measurement(llc_misses=8.0)
        assert throughput(lean, 40).speedup > throughput(heavy, 40).speedup

    def test_speedup_bounded_by_effective_parallelism(self):
        m = fake_measurement()
        p = throughput(m, 40)
        assert p.speedup <= MachineModel().effective_parallelism(40) + 1e-6

    def test_cache_misses_per_sec(self):
        m = fake_measurement(llc_misses=2.0)
        p = throughput(m, 8)
        assert p.cache_misses_per_sec == pytest.approx(
            p.lookups_per_sec * 2.0
        )

    def test_zero_misses_no_bandwidth_term(self):
        m = fake_measurement(llc_misses=0.0)
        p = throughput(m, 20)
        assert p.speedup == pytest.approx(20.0, rel=1e-6)
