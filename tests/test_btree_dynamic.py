"""Updatable B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traditional.btree_dynamic import DynamicBTree


class TestBasics:
    def test_insert_get(self):
        t = DynamicBTree(fanout=4)
        t.insert(5, 50)
        t.insert(1, 10)
        t.insert(9, 90)
        assert t.get(5) == 50
        assert t.get(1) == 10
        assert t.get(2) is None
        assert len(t) == 3

    def test_overwrite(self):
        t = DynamicBTree(fanout=4)
        t.insert(7, 1)
        t.insert(7, 2)
        assert t.get(7) == 2
        assert len(t) == 1

    def test_splits_grow_height(self):
        t = DynamicBTree(fanout=4)
        for i in range(200):
            t.insert(i, i)
        assert t.height >= 3
        assert all(t.get(i) == i for i in range(0, 200, 17))

    def test_reverse_inserts(self):
        t = DynamicBTree(fanout=4)
        for i in range(500, 0, -1):
            t.insert(i, i * 2)
        assert [k for k, _ in t.items()] == list(range(1, 501))

    def test_range_scan(self):
        t = DynamicBTree(fanout=8)
        for i in range(0, 1_000, 3):
            t.insert(i, i)
        out = [k for k, _ in t.range(100, 200)]
        assert out == [k for k in range(0, 1_000, 3) if 100 <= k < 200]

    def test_range_across_leaves(self):
        t = DynamicBTree(fanout=4)
        for i in range(100):
            t.insert(i, i)
        assert len(list(t.range(0, 100))) == 100

    def test_bulk_load(self):
        t = DynamicBTree.bulk_load(range(0, 100, 2), range(50), fanout=8)
        assert t.get(42) == 21
        with pytest.raises(ValueError):
            DynamicBTree.bulk_load([3, 1], [0, 0])

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            DynamicBTree(fanout=2)

    def test_node_occupancy_bounded(self):
        t = DynamicBTree(fanout=8)
        rng = random.Random(0)
        for _ in range(2_000):
            t.insert(rng.randrange(10**9), 0)

        def check(node):
            from repro.traditional.btree_dynamic import _Internal

            assert len(node.keys) <= 8
            if isinstance(node, _Internal):
                assert len(node.children) == len(node.keys) + 1
                for child in node.children:
                    check(child)

        check(t._root)


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**40), st.integers(0, 2**20)),
            min_size=1,
            max_size=400,
        ),
        st.sampled_from([4, 8, 32]),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_dict(self, ops, fanout):
        t = DynamicBTree(fanout=fanout)
        reference = {}
        for key, value in ops:
            t.insert(key, value)
            reference[key] = value
        assert len(t) == len(reference)
        for key in list(reference)[:60]:
            assert t.get(key) == reference[key]
        assert [k for k, _ in t.items()] == sorted(reference)
        assert dict(t.items()) == reference
