"""FITing-Tree extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.learned.fitting_tree import FITingTreeIndex
from repro.memsim import PerfTracer

from conftest import build


class TestFITingValidity:
    @pytest.mark.parametrize("epsilon", [4, 32, 256])
    def test_valid_on_all_datasets(self, all_datasets_small, epsilon):
        for name, ds in all_datasets_small.items():
            idx = build("FITing", ds, epsilon=epsilon)
            probes = list(ds.keys[::41]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, name

    def test_valid_on_absent_keys(self, amzn_small, amzn_workload):
        idx = build("FITing", amzn_small, epsilon=16)
        assert validate_index(idx, amzn_workload.keys_py) is None

    def test_extreme_probes(self, amzn_small, extreme_probe_keys):
        idx = build("FITing", amzn_small, epsilon=16)
        assert validate_index(idx, extreme_probe_keys) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=300, unique=True),
        st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_validity_property(self, keys, probe):
        keys.sort()
        idx = FITingTreeIndex(epsilon=8).build(np.array(keys, dtype=np.uint64))
        assert validate_index(idx, [probe]) is None


class TestFITingStructure:
    def test_bound_width_limited_by_epsilon(self, amzn_small):
        eps = 16
        idx = build("FITing", amzn_small, epsilon=eps)
        for key in amzn_small.keys[::97]:
            assert len(idx.lookup(int(key))) <= 2 * eps + 3

    def test_same_segments_as_pgm_bottom(self, osm_small):
        """FITing-Tree and PGM share the segmentation; only the top
        structure differs."""
        from repro.learned.pgm import PGMIndex

        fit = build("FITing", osm_small, epsilon=32)
        pgm = build("PGM", osm_small, epsilon=32)
        assert fit.n_segments == pgm._levels[-1].n_segments

    def test_fewer_reads_than_btree_on_data(self, amzn_small):
        """The point of FITing-Tree: the tree only indexes segments."""
        from repro.traditional.btree import BTreeIndex

        fit = build("FITing", amzn_small, epsilon=64)
        bt = BTreeIndex(gap=1).build(amzn_small.keys)
        tf, tb = PerfTracer(), PerfTracer()
        for key in amzn_small.keys[::53]:
            fit.lookup(int(key), tf)
            bt.lookup(int(key), tb)
        assert fit.size_bytes() < bt.size_bytes() / 4

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FITingTreeIndex(epsilon=0)
        with pytest.raises(ValueError):
            FITingTreeIndex(fanout=1)

    def test_sweep_monotone_sizes(self, amzn_small):
        sizes = [
            build("FITing", amzn_small, **cfg).size_bytes()
            for cfg in FITingTreeIndex.size_sweep_configs(amzn_small.n)
        ]
        assert sizes == sorted(sizes)


class TestDeprecatedModuleAlias:
    def test_old_misspelled_import_still_works(self):
        import importlib
        import warnings

        import repro.learned.fiting_tree as shim_preload  # noqa: F401

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.reload(shim_preload)
        assert shim.FITingTreeIndex is FITingTreeIndex
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
