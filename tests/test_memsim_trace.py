"""Unit tests for the trace record-replay layer (`repro.memsim.trace`)."""

from __future__ import annotations

import numpy as np

from repro.memsim import PerfTracer, SiteInterner, TraceRecorder, TraceStore
from repro.memsim.trace import K_BRANCH, K_INSTR, K_READ, K_REPEAT, Trace


class TestTraceRecorder:
    def test_records_typed_event_stream(self):
        rec = TraceRecorder()
        rec.read(0x2040, 16)
        rec.instr(3)
        rec.branch("bs.cmp", True)
        rec.branch("bs.cmp", False)
        trace = rec.finish()
        assert len(trace) == 4
        assert trace.kinds.dtype == np.uint8
        assert trace.a.dtype == np.int64 and trace.b.dtype == np.int64
        assert trace.kinds.tolist() == [K_READ, K_INSTR, K_BRANCH, K_BRANCH]
        assert trace.a.tolist() == [0x2040, 3, 0, 0]
        assert trace.b.tolist() == [16, 0, 1, 0]
        assert rec.sites.name(0) == "bs.cmp"

    def test_tees_events_to_inner_tracer(self):
        inner = PerfTracer()
        rec = TraceRecorder(inner)
        rec.read(64, 8)
        rec.instr(2)
        rec.branch("x", True)
        c = inner.counters
        assert c.reads == 1 and c.instructions == 4 and c.branches == 1

    def test_lists_are_plain_ints_and_cached(self):
        rec = TraceRecorder()
        rec.read(1 << 45, 8)  # bigger than int32: must survive int64
        trace = rec.finish()
        kinds, a, b = trace.lists()
        assert a == [1 << 45]
        assert type(a[0]) is int
        assert trace.lists() is trace.lists() or trace.lists()[1] is a

    def test_default_size_matches_tracer_default(self):
        rec = TraceRecorder()
        rec.read(128)
        assert rec.finish().b.tolist() == [8]

    def test_same_line_reads_compress_to_repeat(self):
        rec = TraceRecorder()
        rec.read(4096, 8)  # establishes line 64 MRU, page 1 MRU
        rec.read(4104, 8)  # same line: starts a repeat run
        rec.read(4096, 8)  # still the same line: merges
        rec.instr(2)
        rec.read(4100, 4)  # merges even across the instr event
        rec.read(4160, 8)  # next line: a fresh K_READ
        trace = rec.finish()
        assert trace.kinds.tolist() == [K_READ, K_REPEAT, K_INSTR, K_READ]
        assert trace.b.tolist() == [8, 3, 0, 8]

    def test_repeat_compression_replays_identically(self):
        def drive(t):
            t.read(4096, 8)
            t.read(4104, 8)
            t.read(4096, 8)
            t.read(8192, 64)  # multi-line, page-aligned
            t.read(8248, 8)  # repeat of that read's last line

        rec = TraceRecorder()
        drive(rec)
        trace = rec.finish()
        assert K_REPEAT in trace.kinds.tolist()
        direct = PerfTracer()
        drive(direct)
        for engine in ("reference", "fast"):
            t = PerfTracer(engine=engine)
            t.replay(trace)
            assert t.snapshot() == direct.snapshot(), engine

    def test_page_crossing_read_blocks_repeat(self):
        # A read whose last line sits outside its first (translated)
        # page must NOT arm the repeat path: the next read of that line
        # could still take a TLB miss.
        rec = TraceRecorder()
        rec.read(4096 - 32, 64)  # crosses into page 1; translates page 0
        rec.read(4096, 8)  # same line as the previous read's last
        assert rec.finish().kinds.tolist() == [K_READ, K_READ]


class TestTraceStore:
    def test_round_trip_with_meta(self):
        store = TraceStore()
        trace = Trace([K_INSTR], [4], [0])
        assert store.put(("binary", 42), trace, meta=3.5)
        got = store.get(("binary", 42))
        assert got is not None and got[0] is trace and got[1] == 3.5
        assert store.get(("binary", 43)) is None
        assert store.hits == 1 and store.misses == 1
        assert len(store) == 1 and store.events == 1

    def test_event_budget_declines_politely(self):
        store = TraceStore(max_events=5)
        big = Trace([K_INSTR] * 4, [1] * 4, [0] * 4)
        assert store.put("a", big)
        assert not store.put("b", big)  # 8 > 5: declined, not stored
        assert store.get("b") is None
        assert store.events == 4

    def test_duplicate_put_is_idempotent(self):
        store = TraceStore()
        t1 = Trace([K_INSTR], [1], [0])
        store.put("k", t1, meta="first")
        assert store.put("k", Trace([K_INSTR], [9], [0]), meta="second")
        assert store.get("k")[1] == "first"
        assert store.events == 1

    def test_interner_is_shared_with_recorders(self):
        store = TraceStore()
        rec = TraceRecorder(sites=store.sites)
        rec.branch("site.a", True)
        assert store.sites.ids["site.a"] == 0


class TestReplayThroughTracer:
    def test_empty_trace_is_a_noop(self):
        t = PerfTracer()
        t.replay(Trace([], [], []))
        assert t.snapshot() == PerfTracer().snapshot()

    def test_replay_accumulates_like_direct_calls(self):
        sites = SiteInterner()
        rec = TraceRecorder(sites=sites)
        rec.read(4096, 8)
        rec.branch("s", True)
        rec.instr(7)
        trace = rec.finish()
        t = PerfTracer(sites=sites)
        t.replay(trace)
        t.replay(trace)
        direct = PerfTracer(sites=sites)
        for _ in range(2):
            direct.read(4096, 8)
            direct.branch("s", True)
            direct.instr(7)
        assert t.snapshot() == direct.snapshot()
