"""Vectorized fitting must make bit-identical decisions to the reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned.fitting_fast import fit_pla_fast, fit_spline_fast
from repro.learned.pla import fit_pla
from repro.learned.spline import fit_spline

sorted_unique = st.lists(
    st.integers(0, 2**64 - 1), min_size=1, max_size=500, unique=True
).map(sorted)


def assert_segments_equal(fast, reference):
    assert len(fast) == len(reference)
    for a, b in zip(fast, reference):
        assert a.first_key == b.first_key
        assert a.slope == b.slope
        assert a.intercept == b.intercept
        assert a.first_pos == b.first_pos
        assert a.last_pos == b.last_pos


class TestPlaEquivalence:
    @pytest.mark.parametrize("epsilon", [0.0, 1.0, 8.0, 64.0])
    def test_on_all_datasets(self, all_datasets_small, epsilon):
        for name, ds in all_datasets_small.items():
            keys = ds.keys
            assert_segments_equal(
                fit_pla_fast(keys, epsilon), fit_pla(keys.tolist(), epsilon)
            ), name

    @given(sorted_unique, st.sampled_from([0.0, 1.0, 4.0, 32.0]))
    @settings(max_examples=60, deadline=None)
    def test_property(self, keys, epsilon):
        fast = fit_pla_fast(np.array(keys, dtype=np.uint64), epsilon)
        ref = fit_pla(keys, epsilon)
        assert_segments_equal(fast, ref)

    def test_custom_positions(self):
        keys = np.array([10, 20, 30, 45, 80], dtype=np.uint64)
        pos = [3, 6, 9, 12, 20]
        assert_segments_equal(
            fit_pla_fast(keys, 1.0, positions=np.array(pos)),
            fit_pla(keys.tolist(), 1.0, positions=pos),
        )

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            fit_pla_fast(np.array([3, 3], dtype=np.uint64), 1.0)

    def test_window_growth_path(self):
        # A long collinear run forces several window doublings.
        keys = np.arange(0, 50_000, 7, dtype=np.uint64)
        fast = fit_pla_fast(keys, 2.0)
        assert len(fast) == 1

    def test_empty(self):
        assert fit_pla_fast(np.array([], dtype=np.uint64), 1.0) == []


class TestSplineEquivalence:
    @pytest.mark.parametrize("epsilon", [1.0, 8.0, 64.0])
    def test_on_all_datasets(self, all_datasets_small, epsilon):
        for name, ds in all_datasets_small.items():
            keys = ds.keys
            assert fit_spline_fast(keys, epsilon) == fit_spline(
                keys.tolist(), epsilon
            ), name

    @given(sorted_unique, st.sampled_from([1.0, 8.0, 64.0]))
    @settings(max_examples=60, deadline=None)
    def test_property(self, keys, epsilon):
        fast = fit_spline_fast(np.array(keys, dtype=np.uint64), epsilon)
        assert fast == fit_spline(keys, epsilon)

    def test_window_growth_path(self):
        keys = np.arange(0, 300_000, 11, dtype=np.uint64)
        knots = fit_spline_fast(keys, 4.0)
        assert knots == fit_spline(keys.tolist(), 4.0)

    def test_single_and_empty(self):
        assert fit_spline_fast(np.array([9], dtype=np.uint64), 2.0) == [(9, 0)]
        assert fit_spline_fast(np.array([], dtype=np.uint64), 2.0) == []
