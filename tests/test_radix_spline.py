"""RadixSpline index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import validate_index
from repro.learned.radix_spline import RadixSplineIndex
from repro.memsim import PerfTracer

from conftest import build


class TestRSValidity:
    @pytest.mark.parametrize("epsilon,bits", [(8, 6), (32, 10), (128, 14)])
    def test_valid_on_all_datasets(self, all_datasets_small, epsilon, bits):
        for name, ds in all_datasets_small.items():
            idx = build("RS", ds, epsilon=epsilon, radix_bits=bits)
            probes = list(ds.keys[::43]) + [0, 2**64 - 1]
            assert validate_index(idx, probes) is None, name

    def test_valid_on_absent_keys(self, amzn_small, amzn_workload):
        idx = build("RS", amzn_small, epsilon=16, radix_bits=8)
        assert validate_index(idx, amzn_workload.keys_py) is None

    def test_extreme_probes(self, amzn_small, extreme_probe_keys):
        idx = build("RS", amzn_small, epsilon=16, radix_bits=8)
        assert validate_index(idx, extreme_probe_keys) is None

    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=300, unique=True),
        st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_validity_property(self, keys, probe):
        keys.sort()
        idx = RadixSplineIndex(epsilon=8, radix_bits=6).build(
            np.array(keys, dtype=np.uint64)
        )
        assert validate_index(idx, [probe]) is None


class TestRSStructure:
    def test_bound_width_limited_by_epsilon(self, amzn_small):
        eps = 16
        idx = build("RS", amzn_small, epsilon=eps, radix_bits=10)
        for key in amzn_small.keys[::71]:
            bound = idx.lookup(int(key))
            assert len(bound) <= 2 * eps + 3

    def test_radix_table_narrows_search(self, amzn_small):
        """More radix bits -> fewer spline-search steps (fewer branches)."""

        def branches(bits):
            idx = build("RS", amzn_small, epsilon=128, radix_bits=bits)
            t = PerfTracer()
            for key in amzn_small.keys[::59]:
                idx.lookup(int(key), t)
            return t.counters.branches

        assert branches(12) < branches(4)

    def test_face_outliers_defeat_radix_table(self, all_datasets_small):
        """The paper's RBS/face observation applies to RS's table too."""
        face = all_datasets_small["face"]
        amzn = all_datasets_small["amzn"]

        def search_branches(ds):
            idx = build("RS", ds, epsilon=32, radix_bits=10)
            t = PerfTracer()
            for key in ds.keys[::47]:
                idx.lookup(int(key), t)
            return t.counters.branches / (len(ds.keys) // 47 + 1)

        assert search_branches(face) > 2 * search_branches(amzn)

    def test_smaller_epsilon_more_knots(self, osm_small):
        fine = build("RS", osm_small, epsilon=4, radix_bits=8)
        coarse = build("RS", osm_small, epsilon=64, radix_bits=8)
        assert fine.n_spline_points > coarse.n_spline_points

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RadixSplineIndex(epsilon=0)
        with pytest.raises(ValueError):
            RadixSplineIndex(radix_bits=40)

    def test_tiny_dataset(self):
        idx = RadixSplineIndex(epsilon=4, radix_bits=4).build(
            np.array([5, 9], dtype=np.uint64)
        )
        assert validate_index(idx, [0, 5, 7, 9, 10, 2**64 - 1]) is None
