"""Source lint: deprecated modules must not gain new in-repo importers.

``repro.learned.fiting_tree`` (misspelled; removed in release 2.0) only
keeps *external* code alive.  Inside this repository every reference is
denied except the shim itself and the tests that pin its behaviour --
adding an import anywhere else fails CI here.
"""

from __future__ import annotations

import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Trees scanned for denylisted references.
SCAN_DIRS = ("src", "tests", "examples", "benchmarks")

#: Substrings whose appearance in a Python file is a lint failure.
DENYLIST = ("fiting_tree",)

#: Files allowed to mention a denylisted name (the shim itself and the
#: tests that deliberately exercise / police it), repo-relative.
ALLOWLIST = {
    "src/repro/learned/fiting_tree.py",
    "tests/test_deprecation_shims.py",
    "tests/test_fitting_tree.py",
    "tests/test_lint_denylist.py",
}


def _python_files():
    for scan_dir in SCAN_DIRS:
        root = os.path.join(REPO_ROOT, scan_dir)
        if not os.path.isdir(root):
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


@pytest.mark.parametrize("token", DENYLIST)
def test_no_new_references_to_denylisted_modules(token):
    offenders = []
    for path in _python_files():
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        if rel in ALLOWLIST:
            continue
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                if token in line:
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        f"deprecated module {token!r} referenced outside its allowlist "
        "(it is removed in release 2.0; import the canonical module "
        "instead):\n" + "\n".join(offenders)
    )


def test_allowlisted_shim_still_exists():
    # When the shim is finally deleted (release 2.0), this test and the
    # allowlist should be retired with it.
    assert os.path.exists(
        os.path.join(REPO_ROOT, "src/repro/learned/fiting_tree.py")
    )
