"""SVG plotting module."""

import xml.etree.ElementTree as ET

import pytest

from repro.bench.harness import Measurement
from repro.bench.svgplot import (
    SvgCanvas,
    _fmt_tick,
    _nice_linear_ticks,
    _nice_log_ticks,
    pareto_figure,
    series_figure,
)
from repro.memsim.counters import PerfCountersF


def fake(index, size_mb, latency):
    return Measurement(
        index=index,
        dataset="amzn",
        config={},
        n_keys=1000,
        size_bytes=int(size_mb * 1048576),
        build_seconds=0.0,
        counters=PerfCountersF(),
        latency_ns=latency,
        fence_latency_ns=latency * 1.3,
        avg_log2_bound=4.0,
        n_lookups=100,
    )


class TestTicks:
    def test_log_ticks_cover_range(self):
        ticks = _nice_log_ticks(0.003, 45.0)
        assert ticks[0] <= 0.003
        assert ticks[-1] >= 45.0
        assert all(b / a == pytest.approx(10.0) for a, b in zip(ticks, ticks[1:]))

    def test_linear_ticks_are_round(self):
        ticks = _nice_linear_ticks(0, 950)
        assert len(ticks) >= 4
        assert all(t == round(t, 6) for t in ticks)

    def test_fmt_tick(self):
        assert _fmt_tick(0) == "0"
        assert _fmt_tick(100) == "100"
        assert _fmt_tick(0.001) == "1e-3"


class TestCanvas:
    def test_transforms_monotone(self):
        c = SvgCanvas((0.01, 10.0), (0.0, 100.0), "t", "x", "y")
        assert c.x_px(0.01) < c.x_px(1.0) < c.x_px(10.0)
        assert c.y_px(0.0) > c.y_px(50.0) > c.y_px(100.0)

    def test_render_is_valid_xml(self):
        c = SvgCanvas((0.01, 10.0), (0.0, 100.0), "t", "x", "y")
        c.dots([(0.1, 30.0), (1.0, 60.0)], "#000")
        c.polyline([(0.1, 30.0), (1.0, 60.0)], "#000")
        c.hline(50.0)
        c.legend([("a", "#000")])
        root = ET.fromstring(c.render())
        assert root.tag.endswith("svg")


class TestFigures:
    def test_pareto_figure_structure(self):
        ms = [
            fake("RMI", 0.01, 400),
            fake("RMI", 0.1, 300),
            fake("BTree", 0.05, 450),
        ]
        svg = pareto_figure(ms, title="amzn", baseline_ns=500.0)
        root = ET.fromstring(svg)
        circles = root.findall(".//{http://www.w3.org/2000/svg}circle")
        assert len(circles) == 3
        assert "RMI" in svg and "BTree" in svg and "BS baseline" in svg

    def test_pareto_rejects_empty(self):
        with pytest.raises(ValueError):
            pareto_figure([])

    def test_series_figure(self):
        svg = series_figure(
            {"RMI": [(1, 4.0), (40, 90.0)], "PGM": [(1, 3.0), (40, 80.0)]},
            title="threads",
            x_label="threads",
            y_label="M lookups/s",
        )
        root = ET.fromstring(svg)
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) == 2


class TestCliFlag:
    def test_save_svg(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        rc = main(
            [
                "--experiment",
                "fig7",
                "--quick",
                "--n-keys",
                "2500",
                "--n-lookups",
                "40",
                "--datasets",
                "amzn",
                "--save-svg",
                str(tmp_path),
            ]
        )
        assert rc == 0
        svg_file = tmp_path / "pareto_amzn.svg"
        assert svg_file.exists()
        ET.parse(svg_file)  # well-formed
