"""Text reporting helpers."""

from repro.bench.report import _fmt, bullet_list, format_series, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["name", "value"], [("a", 1.0), ("bbb", 22.5)])
        lines = out.split("\n")
        assert len(lines) == 4
        assert set(lines[1].replace(" ", "")) == {"-"}
        # Columns aligned: all lines same length.
        assert len({len(line) for line in lines}) == 1

    def test_wide_cell_expands_column(self):
        out = format_table(["x"], [("short",), ("a-much-longer-cell",)])
        assert "a-much-longer-cell" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestFmt:
    def test_float_formats(self):
        assert _fmt(0.0) == "0"
        assert _fmt(3.14159) == "3.142"
        assert _fmt(42.123) == "42.1"
        assert _fmt(12345.6) == "12,346"

    def test_non_float_passthrough(self):
        assert _fmt("abc") == "abc"
        assert _fmt(7) == "7"

    def test_none_renders_as_dash(self):
        assert _fmt(None) == "-"

    def test_none_cell_in_table(self):
        out = format_table(["a", "b"], [("x", None), ("y", 1.5)])
        assert "None" not in out
        row = out.split("\n")[2]
        assert row.split()[-1] == "-"


def test_format_series():
    out = format_series("title", [(1, 2.0), (3, 4.0)])
    assert out.startswith("title")
    assert "  1  2.000" in out


def test_bullet_list():
    out = bullet_list(["one", "two"])
    assert out == "  * one\n  * two"
