"""Unit tests for the tenancy layer: shedding rule, tenant traces,
per-tenant accounting, and the obs metrics bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim.counters import PerfCountersF
from repro.obs.metrics import MetricsRegistry
from repro.serve.core import ServiceModel
from repro.serve.router import ShardMap
from repro.serve.scenario import (
    AdmissionSpec,
    ArrivalSpec,
    KeySpaceSpec,
    ScenarioSpec,
    TenantSpec,
    TopologySpec,
    single_tenant_spec,
)
from repro.serve.tenancy import (
    replay_trace,
    should_shed,
    simulate_scenario,
)
from repro.serve.trace import TenantTrace


def counters(instructions=500):
    return PerfCountersF(
        instructions=instructions,
        branch_misses=5.0,
        llc_misses=30.0,
        l1_hits=40.0,
    )


@pytest.fixture(scope="module")
def keys():
    raw = np.random.default_rng(0).integers(
        0, 2**40, size=5000, dtype=np.uint64
    )
    return np.unique(raw)


def pressure_spec(service_ns: float, admission: AdmissionSpec) -> ScenarioSpec:
    """Gold at half capacity plus a bronze flash crowd that overloads a
    1-shard, 1-replica, 1-core cluster several times over mid-run."""
    rate = 0.9 * 1e9 / service_ns
    return ScenarioSpec(
        name="pressure",
        tenants=(
            TenantSpec(
                name="gold",
                slo_class="gold",
                arrivals=ArrivalSpec(
                    rate_per_sec=0.5 * rate, n_requests=400, seed=1
                ),
                p99_slo_ns=20.0 * service_ns,
            ),
            TenantSpec(
                name="bronze",
                slo_class="bronze",
                arrivals=ArrivalSpec(
                    rate_per_sec=0.5 * rate,
                    n_requests=1200,
                    seed=2,
                    shape="flash",
                    params=(
                        ("spike_factor", 12.0),
                        ("spike_start_request", 150),
                        ("spike_len_requests", 500),
                    ),
                ),
            ),
        ),
        topology=TopologySpec(n_shards=1, n_replicas=1, n_cores=1),
        admission=admission,
    )


class TestShouldShed:
    def test_disabled_never_sheds(self):
        admission = AdmissionSpec(enabled=False, bronze_depth=1)
        assert not should_shed(admission, "bronze", 10**6)

    def test_no_threshold_never_sheds(self):
        admission = AdmissionSpec(enabled=True, bronze_depth=4)
        assert not should_shed(admission, "gold", 10**6)
        assert not should_shed(admission, "silver", 10**6)

    def test_threshold_is_inclusive(self):
        admission = AdmissionSpec(enabled=True, bronze_depth=4)
        assert not should_shed(admission, "bronze", 3)
        assert should_shed(admission, "bronze", 4)
        assert should_shed(admission, "bronze", 5)

    def test_per_class_thresholds(self):
        admission = AdmissionSpec(
            enabled=True, bronze_depth=2, silver_depth=5, gold_depth=9
        )
        assert should_shed(admission, "bronze", 2)
        assert not should_shed(admission, "silver", 2)
        assert should_shed(admission, "silver", 5)
        assert not should_shed(admission, "gold", 5)
        assert should_shed(admission, "gold", 9)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            should_shed(AdmissionSpec(enabled=True), "platinum", 0)

    def test_pure_function(self):
        """Same (config, class, backlog) -> same answer, call after call."""
        admission = AdmissionSpec(enabled=True, bronze_depth=3)
        answers = {should_shed(admission, "bronze", 3) for _ in range(10)}
        assert answers == {True}


class TestTenantTrace:
    def mixed_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="mix",
            tenants=(
                TenantSpec(
                    name="a",
                    arrivals=ArrivalSpec(
                        rate_per_sec=1e5, n_requests=60, seed=1
                    ),
                ),
                TenantSpec(
                    name="b",
                    slo_class="bronze",
                    arrivals=ArrivalSpec(
                        rate_per_sec=2e5, n_requests=90, seed=2
                    ),
                    keyspace=KeySpaceSpec(hi_frac=0.5, seed=2),
                ),
            ),
        )

    def test_merge_is_sorted_and_complete(self, keys):
        spec = self.mixed_spec()
        trace = TenantTrace.from_spec(spec, keys)
        assert len(trace) == 150
        assert trace.counts_by_tenant() == [60, 90]
        assert np.all(np.diff(trace.arrivals_ns) >= 0.0)

    def test_merge_preserves_per_tenant_streams(self, keys):
        """Each tenant's subsequence of the merged trace is exactly its
        own generated arrivals and sampled keys, in order."""
        spec = self.mixed_spec()
        trace = TenantTrace.from_spec(spec, keys)
        for ti, tenant in enumerate(spec.tenants):
            mask = trace.tenants == ti
            times = trace.arrivals_ns[mask].tolist()
            tkeys = [int(k) for k in trace.keys[mask]]
            assert times == tenant.arrivals.generate()
            assert tkeys == tenant.keyspace.sample(
                keys, tenant.arrivals.n_requests
            )

    def test_json_and_file_round_trip(self, keys, tmp_path):
        trace = TenantTrace.from_spec(self.mixed_spec(), keys)
        again = TenantTrace.from_json(trace.to_json())
        assert again == trace
        assert again.content_key() == trace.content_key()
        path = tmp_path / "day.trace.json"
        trace.save(path)
        assert TenantTrace.load(path) == trace

    def test_content_key_sensitive_to_payload(self, keys):
        trace = TenantTrace.from_spec(self.mixed_spec(), keys)
        other = TenantTrace(
            trace.arrivals_ns,
            trace.keys,
            trace.tenants,
            ("a", "c"),
        )
        assert other.content_key() != trace.content_key()

    def test_validation(self):
        with pytest.raises(ValueError, match="parallel"):
            TenantTrace([0.0, 1.0], [1], [0, 0], ("a",))
        with pytest.raises(ValueError, match="at least one request"):
            TenantTrace([], [], [], ("a",))
        with pytest.raises(ValueError, match="out of range"):
            TenantTrace([0.0], [1], [1], ("a",))
        with pytest.raises(ValueError, match="non-decreasing"):
            TenantTrace([1.0, 0.5], [1, 2], [0, 0], ("a",))
        with pytest.raises(ValueError, match="unique"):
            TenantTrace([0.0], [1], [0], ("a", "a"))

    def test_schema_version_checked(self, keys):
        d = TenantTrace.from_spec(self.mixed_spec(), keys).to_dict()
        d["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            TenantTrace.from_dict(d)


class TestScenarioExecution:
    def test_runs_are_deterministic(self, keys):
        spec = pressure_spec(2000.0, AdmissionSpec(enabled=True, bronze_depth=5))
        svc = ServiceModel(counters())
        shard_map = ShardMap.from_keys(keys, 1)
        a = simulate_scenario(spec, [svc], keys, shard_map=shard_map)
        b = simulate_scenario(
            spec, [ServiceModel(counters())], keys, shard_map=shard_map
        )
        assert len(a.cluster.records) == len(b.cluster.records)
        for ra, rb in zip(a.cluster.records, b.cluster.records):
            assert (
                ra.rid,
                ra.tenant,
                ra.shed,
                ra.arrival_ns,
                ra.finish_ns,
            ) == (rb.rid, rb.tenant, rb.shed, rb.arrival_ns, rb.finish_ns)

    def test_shedding_protects_gold_under_pressure(self, keys):
        svc = ServiceModel(counters())
        service_ns = svc.service_ns(1)
        shard_map = ShardMap.from_keys(keys, 1)
        off = simulate_scenario(
            pressure_spec(service_ns, AdmissionSpec()),
            [ServiceModel(counters())],
            keys,
            shard_map=shard_map,
        )
        on = simulate_scenario(
            pressure_spec(
                service_ns, AdmissionSpec(enabled=True, bronze_depth=6)
            ),
            [ServiceModel(counters())],
            keys,
            shard_map=shard_map,
        )
        # Without admission control the flash crowd destroys gold's p99
        # and nothing is shed; with it, bronze absorbs rejections and
        # gold's p99 meets its SLO.
        assert off.total_shed == 0
        assert off.by_name("gold").slo_met() is False
        assert on.by_name("bronze").shed > 0
        assert on.by_name("gold").shed == 0
        assert on.by_name("gold").slo_met() is True
        gold_on = on.by_name("gold").summary()
        gold_off = off.by_name("gold").summary()
        assert gold_on.p99_ns < gold_off.p99_ns

    def test_per_tenant_accounting_is_complete(self, keys):
        spec = pressure_spec(2000.0, AdmissionSpec(enabled=True, bronze_depth=4))
        result = simulate_scenario(
            spec, [ServiceModel(counters())], keys,
            shard_map=ShardMap.from_keys(keys, 1),
        )
        assert sum(t.requests for t in result.tenants) == len(
            result.cluster.records
        )
        for ts in result.tenants:
            # Fault-free: every request completes, fails, or was shed.
            assert ts.completed + ts.failed + ts.shed == ts.requests
            assert len(ts.latencies_ns) == ts.completed
            assert 0.0 <= ts.shed_fraction <= 1.0
            assert 0.0 <= ts.goodput <= 1.0
        assert result.total_shed == sum(t.shed for t in result.tenants)
        assert result.admitted == len(result.cluster.records) - (
            result.total_shed
        )

    def test_shed_requests_never_dispatch(self, keys):
        spec = pressure_spec(2000.0, AdmissionSpec(enabled=True, bronze_depth=4))
        result = simulate_scenario(
            spec, [ServiceModel(counters())], keys,
            shard_map=ShardMap.from_keys(keys, 1),
        )
        shed = [r for r in result.cluster.records if r.shed]
        assert shed
        for r in shed:
            assert r.attempts == 0 and r.retries == 0
            assert not r.completed and not r.failed
            assert r.start_ns < 0 and r.finish_ns < 0

    def test_fully_shed_tenant_has_no_summary(self, keys):
        spec = pressure_spec(2000.0, AdmissionSpec(enabled=True, bronze_depth=1))
        result = simulate_scenario(
            spec, [ServiceModel(counters())], keys,
            shard_map=ShardMap.from_keys(keys, 1),
        )
        bronze = result.by_name("bronze")
        if bronze.completed == 0:
            assert bronze.summary() is None
            assert bronze.slo_met() is None

    def test_replay_requires_matching_tenants(self, keys):
        spec = pressure_spec(2000.0, AdmissionSpec())
        trace = TenantTrace.from_spec(spec, keys)
        other = single_tenant_spec(rate_per_sec=1e5, n_requests=10)
        with pytest.raises(ValueError, match="tenants"):
            replay_trace(other, trace, [ServiceModel(counters())], keys=keys)

    def test_replay_needs_keys_or_shard_map(self, keys):
        spec = pressure_spec(2000.0, AdmissionSpec())
        trace = TenantTrace.from_spec(spec, keys)
        with pytest.raises(ValueError, match="keys"):
            replay_trace(spec, trace, [ServiceModel(counters())])


class TestMetricsBridge:
    def test_per_tenant_counters_published(self, keys):
        spec = pressure_spec(2000.0, AdmissionSpec(enabled=True, bronze_depth=5))
        result = simulate_scenario(
            spec, [ServiceModel(counters())], keys,
            shard_map=ShardMap.from_keys(keys, 1),
        )
        reg = MetricsRegistry()
        result.to_metrics(registry=reg)
        snap = reg.snapshot()
        c = snap["counters"]
        assert c["serve.tenancy.requests"] == len(result.cluster.records)
        assert c["serve.tenancy.shed"] == result.total_shed
        for ts in result.tenants:
            p = f"serve.tenancy.tenant.{ts.name}"
            assert c[f"{p}.requests"] == ts.requests
            assert c[f"{p}.completed"] == ts.completed
            assert c[f"{p}.shed"] == ts.shed
        gold = result.by_name("gold")
        assert snap["gauges"]["serve.tenancy.tenant.gold.latency.p99_ns"] == (
            gold.summary().p99_ns
        )
        assert c["serve.tenancy.tenant.gold.slo.runs"] == 1
        assert c["serve.tenancy.tenant.gold.slo.requests_over"] == (
            gold.requests_over_slo
        )

    def test_violation_counter_only_on_miss(self, keys):
        svc = ServiceModel(counters())
        service_ns = svc.service_ns(1)
        shard_map = ShardMap.from_keys(keys, 1)
        reg = MetricsRegistry()
        off = simulate_scenario(
            pressure_spec(service_ns, AdmissionSpec()),
            [ServiceModel(counters())], keys, shard_map=shard_map,
        )
        off.to_metrics(registry=reg)
        assert reg.snapshot()["counters"][
            "serve.tenancy.tenant.gold.slo.violations"
        ] == 1
        reg2 = MetricsRegistry()
        on = simulate_scenario(
            pressure_spec(
                service_ns, AdmissionSpec(enabled=True, bronze_depth=6)
            ),
            [ServiceModel(counters())], keys, shard_map=shard_map,
        )
        on.to_metrics(registry=reg2)
        assert (
            "serve.tenancy.tenant.gold.slo.violations"
            not in reg2.snapshot()["counters"]
        )
