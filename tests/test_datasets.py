"""Dataset generators, loader, workloads."""

import numpy as np
import pytest

from repro.datasets.generators import FACE_N_OUTLIERS, GENERATORS
from repro.datasets.loader import DATASET_NAMES, make_dataset
from repro.datasets.workload import make_workload


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestGeneratorContract:
    def test_exact_count(self, name):
        keys = GENERATORS[name](3_000, seed=1)
        assert len(keys) == 3_000

    def test_sorted_unique(self, name):
        keys = GENERATORS[name](3_000, seed=1)
        as_obj = keys.astype(object)
        assert all(b > a for a, b in zip(as_obj, as_obj[1:]))

    def test_deterministic(self, name):
        a = GENERATORS[name](2_000, seed=9)
        b = GENERATORS[name](2_000, seed=9)
        assert np.array_equal(a, b)

    def test_seed_changes_data(self, name):
        a = GENERATORS[name](2_000, seed=1)
        b = GENERATORS[name](2_000, seed=2)
        assert not np.array_equal(a, b)

    def test_dtype_uint64(self, name):
        assert GENERATORS[name](500, seed=0).dtype == np.uint64


class TestDatasetProperties:
    def test_face_has_extreme_outliers(self):
        keys = GENERATORS["face"](5_000, seed=0)
        n_huge = int(np.sum(keys > np.uint64(1 << 59)))
        assert n_huge == FACE_N_OUTLIERS
        # Outliers wreck the top radix bits: the largest key is >= 2**59
        # while the 99th percentile of the body is < 2**50.
        assert int(keys[-FACE_N_OUTLIERS - 1]) < (1 << 50)

    def test_osm_harder_to_learn_than_amzn(self):
        """The paper's central osm observation, via PLA segment counts."""
        from repro.learned.pla import fit_pla

        amzn = GENERATORS["amzn"](8_000, seed=0)
        osm = GENERATORS["osm"](8_000, seed=0)
        segs_amzn = len(fit_pla(amzn.tolist(), 32.0))
        segs_osm = len(fit_pla(osm.tolist(), 32.0))
        assert segs_osm > 2 * segs_amzn

    def test_wiki_keys_look_like_timestamps(self):
        keys = GENERATORS["wiki"](2_000, seed=0)
        assert int(keys[0]) > 1_000_000_000
        assert int(keys[-1]) < 2_000_000_000


class TestLoader:
    def test_payloads_match_keys(self):
        ds = make_dataset("amzn", 1_000)
        assert len(ds.payloads) == len(ds.keys)

    def test_memoized(self):
        a = make_dataset("wiki", 1_000, seed=4)
        b = make_dataset("wiki", 1_000, seed=4)
        assert a is b

    def test_32bit_variant(self):
        ds = make_dataset("amzn", 2_000, key_bits=32)
        assert int(ds.keys.max()) < (1 << 32)
        assert ds.key_bits == 32

    def test_32bit_preserves_cdf_shape(self):
        ds64 = make_dataset("amzn", 2_000)
        ds32 = make_dataset("amzn", 2_000, key_bits=32)
        k64, p64 = ds64.cdf(sample=50)
        k32, p32 = ds32.cdf(sample=50)
        norm64 = (k64 - k64[0]) / float(k64[-1] - k64[0])
        norm32 = (k32 - k32[0]) / float(k32[-1] - k32[0])
        assert np.allclose(norm64, norm32, atol=0.02)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            make_dataset("nope", 100)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            make_dataset("amzn", 100, key_bits=16)

    def test_checksum(self):
        ds = make_dataset("amzn", 1_000)
        assert ds.checksum([0, 1]) == int(ds.payloads[0]) + int(ds.payloads[1])

    def test_disk_cache_roundtrip(self, tmp_path):
        from repro.datasets import loader

        loader._CACHE.clear()
        a = make_dataset("osm", 800, seed=7, cache_dir=str(tmp_path))
        loader._CACHE.clear()
        b = make_dataset("osm", 800, seed=7, cache_dir=str(tmp_path))
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.payloads, b.payloads)


class TestWorkload:
    def test_present_mode_keys_exist(self, amzn_small):
        wl = make_workload(amzn_small, 200, mode="present")
        key_set = set(amzn_small.keys.tolist())
        assert all(k in key_set for k in wl.keys_py)

    def test_true_positions_correct(self, amzn_small):
        wl = make_workload(amzn_small, 200, mode="mixed")
        keys = amzn_small.keys
        for k, p in zip(wl.keys_py[:50], wl.positions_py[:50]):
            assert p == int(np.searchsorted(keys, np.uint64(k)))

    def test_uniform_mode_within_range(self, amzn_small):
        wl = make_workload(amzn_small, 100, mode="uniform")
        lo, hi = int(amzn_small.keys[0]), int(amzn_small.keys[-1])
        assert all(lo <= k <= hi for k in wl.keys_py)

    def test_expected_checksum_matches_manual(self, amzn_small):
        wl = make_workload(amzn_small, 50, mode="present")
        manual = sum(int(amzn_small.payloads[p]) for p in wl.positions_py)
        assert wl.expected_checksum() == manual

    def test_bad_mode_rejected(self, amzn_small):
        with pytest.raises(ValueError):
            make_workload(amzn_small, 10, mode="bogus")

    def test_deterministic(self, amzn_small):
        a = make_workload(amzn_small, 100, seed=2)
        b = make_workload(amzn_small, 100, seed=2)
        assert a.keys_py == b.keys_py
