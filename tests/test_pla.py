"""Error-bounded piecewise linear approximation (PGM's fitting core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learned.pla import fit_pla, max_pla_error

sorted_unique_keys = st.lists(
    st.integers(0, 2**62), min_size=1, max_size=400, unique=True
).map(sorted)


class TestFitPla:
    def test_single_point(self):
        segs = fit_pla([42], 4.0)
        assert len(segs) == 1
        assert segs[0].predict(42) == 0.0

    def test_two_points(self):
        segs = fit_pla([10, 20], 1.0)
        assert len(segs) == 1

    def test_collinear_needs_one_segment(self):
        keys = list(range(0, 1000, 10))
        segs = fit_pla(keys, 1.0)
        assert len(segs) == 1
        assert max_pla_error(keys, segs) <= 1.0

    def test_error_bound_respected(self, amzn_small):
        keys = amzn_small.keys.tolist()
        for eps in (2.0, 8.0, 64.0):
            segs = fit_pla(keys, eps)
            assert max_pla_error(keys, segs) <= eps

    def test_segments_decrease_with_epsilon(self, amzn_small):
        keys = amzn_small.keys.tolist()
        counts = [len(fit_pla(keys, eps)) for eps in (2.0, 8.0, 32.0, 128.0)]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]

    def test_first_keys_strictly_increasing(self, osm_small):
        segs = fit_pla(osm_small.keys.tolist(), 16.0)
        firsts = [s.first_key for s in segs]
        assert firsts == sorted(set(firsts))

    def test_slopes_non_negative(self, osm_small):
        segs = fit_pla(osm_small.keys.tolist(), 16.0)
        assert all(s.slope >= 0.0 for s in segs)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            fit_pla([5, 5, 6], 2.0)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            fit_pla([1, 2], -1.0)

    def test_empty(self):
        assert fit_pla([], 2.0) == []

    def test_custom_positions(self):
        segs = fit_pla([1, 2, 3], 0.5, positions=[10, 20, 30])
        assert segs[0].intercept == 10.0

    @given(sorted_unique_keys, st.sampled_from([1.0, 4.0, 16.0]))
    @settings(max_examples=60, deadline=None)
    def test_error_bound_property(self, keys, eps):
        segs = fit_pla(keys, eps)
        assert max_pla_error(keys, segs) <= eps
        # Segment boundaries cover the key space from the first key.
        assert segs[0].first_key == keys[0]

    @given(sorted_unique_keys)
    @settings(max_examples=30, deadline=None)
    def test_zero_epsilon_still_valid(self, keys):
        segs = fit_pla(keys, 0.0)
        assert max_pla_error(keys, segs) <= 1e-6


class TestSegmentPositions:
    def test_position_ranges_partition(self, amzn_small):
        keys = amzn_small.keys.tolist()
        segs = fit_pla(keys, 16.0)
        assert segs[0].first_pos == 0
        assert segs[-1].last_pos == len(keys) - 1
        for a, b in zip(segs, segs[1:]):
            assert b.first_pos == a.last_pos + 1
