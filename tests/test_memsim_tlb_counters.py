"""Dedicated unit tests for the TLB and PerfCounters arithmetic.

Both had been covered only incidentally (through PerfTracer-level
tests); these pin their contracts directly.
"""

from __future__ import annotations

import pytest

from repro.memsim.counters import PerfCounters, PerfCountersF
from repro.memsim.tlb import PAGE_SHIFT, TLB, _LruSet

PAGE = 1 << PAGE_SHIFT


class TestLruSet:
    def test_lru_eviction_order(self):
        s = _LruSet(2)
        assert not s.access(1)
        assert not s.access(2)
        assert s.access(1)  # 1 becomes MRU; 2 is now LRU
        assert not s.access(3)  # evicts 2
        assert s.access(1)
        assert not s.access(2)

    def test_flush(self):
        s = _LruSet(4)
        s.access(7)
        s.flush()
        assert not s.access(7)


class TestTLB:
    def test_hit_after_install(self):
        tlb = TLB()
        assert not tlb.access_addr(0)
        assert tlb.access_addr(0)
        assert tlb.access_addr(PAGE - 1)  # same page
        assert not tlb.access_addr(PAGE)  # next page

    def test_l2_backstops_l1_eviction(self):
        tlb = TLB(l1_entries=2, l2_entries=8)
        for page in range(4):  # pages 0,1 fall out of the 2-entry L1
            tlb.access_addr(page * PAGE)
        # Still an overall hit: page 0 is gone from L1 but resident in L2.
        assert tlb.access_addr(0)

    def test_miss_when_evicted_from_both_levels(self):
        tlb = TLB(l1_entries=1, l2_entries=2)
        for page in range(4):
            tlb.access_addr(page * PAGE)
        assert not tlb.access_addr(0)

    def test_flush_forgets_everything(self):
        tlb = TLB()
        tlb.access_addr(123 * PAGE)
        tlb.flush()
        assert not tlb.access_addr(123 * PAGE)

    def test_walk_addr_is_page_table_indexed(self):
        assert TLB.walk_addr(0) == 1 << 44
        assert TLB.walk_addr(PAGE) == (1 << 44) + 8
        # All addresses in one page walk to the same PTE.
        assert TLB.walk_addr(5 * PAGE + 17) == TLB.walk_addr(5 * PAGE)


def _sample() -> PerfCounters:
    return PerfCounters(
        instructions=100,
        branches=20,
        branch_misses=5,
        reads=40,
        l1_hits=30,
        l2_hits=6,
        l3_hits=3,
        llc_misses=1,
        tlb_misses=2,
    )


class TestPerfCountersArithmetic:
    def test_copy_is_detached(self):
        a = _sample()
        b = a.copy()
        assert a == b and a is not b
        b.instructions += 1
        assert a.instructions == 100

    def test_add_and_sub_are_fieldwise(self):
        a = _sample()
        b = _sample()
        total = a + b
        assert total.instructions == 200 and total.tlb_misses == 4
        back = total - b
        assert back == a
        assert a - a == PerfCounters()

    def test_sub_gives_window_deltas(self):
        """The harness's snapshot-delta idiom: after - base."""
        base = _sample()
        after = _sample() + PerfCounters(instructions=7, reads=2, l1_hits=2)
        delta = after - base
        assert delta.instructions == 7
        assert delta.reads == 2 and delta.l1_hits == 2
        assert delta.branches == 0

    def test_scaled_returns_float_counters(self):
        s = _sample().scaled(0.5)
        assert isinstance(s, PerfCountersF)
        assert s.instructions == 50.0
        assert s.branch_misses == 2.5

    def test_per_lookup_divides_by_count(self):
        per = _sample().per_lookup(8)
        assert per.instructions == pytest.approx(12.5)
        assert per.llc_misses == pytest.approx(0.125)

    @pytest.mark.parametrize("n", [0, -3])
    def test_per_lookup_rejects_nonpositive(self, n):
        with pytest.raises(ValueError):
            _sample().per_lookup(n)
